"""Local slack profiling (§4.3 of the paper).

The profiler is the timing simulator itself: a singleton (no mini-graphs)
run on the profiling configuration, with a :class:`SlackCollector` attached
that observes issue times, operand-ready times, and consumer issue times.
Per-static-instruction averages are anchored to the issue time of the
first instruction of the enclosing basic block, exactly as described in
the paper ("a convenient fixed reference point").

*Local slack* of an instruction is the number of cycles its result could
be delayed without delaying any consumer: ``min over consumers of
(consumer issue time − value ready time)``. Correctly-predicted branches
and values with no consumers get the capped slack :data:`SLACK_CAP`;
mispredicted branches get zero slack (their resolution redirects fetch
immediately); stores earn slack through forwarding consumers and ordering
violations.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple

from ..isa.program import Program
from ..pipeline import ckern as _ckern
from ..pipeline.ckern import (
    PLAN_MAX_SRC as _PLAN_MAX_SRC,
    TAP_CONSUME as _TAP_CONSUME,
    TAP_ISSUE as _TAP_ISSUE,
    TAP_REDIRECT as _TAP_REDIRECT,
    tap_fold as _tap_fold,
)

SLACK_CAP = 64
NEVER_READY = None  # operand with no in-flight producer: ready long before


class ProfileEntry:
    """Aggregated timing profile of one static instruction."""

    __slots__ = ("pc", "count", "rel_issue", "src_ready", "out_ready",
                 "slack", "min_slack")

    def __init__(self, pc: int, count: int, rel_issue: float,
                 src_ready: Tuple[Optional[float], ...],
                 out_ready: Optional[float], slack: float, min_slack: int):
        self.pc = pc
        self.count = count
        self.rel_issue = rel_issue
        self.src_ready = src_ready
        self.out_ready = out_ready
        self.slack = slack
        self.min_slack = min_slack

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ProfileEntry pc={self.pc} n={self.count} "
                f"issue={self.rel_issue:.1f} slack={self.slack:.1f}>")


class SlackProfile:
    """Per-static-instruction profile for one (program, input, machine)."""

    def __init__(self, program_name: str, config_name: str, input_name: str,
                 entries: Dict[int, ProfileEntry]):
        self.program_name = program_name
        self.config_name = config_name
        self.input_name = input_name
        self.entries = entries

    def get(self, pc: int) -> Optional[ProfileEntry]:
        """The entry for static instruction ``pc``, or None."""
        return self.entries.get(pc)

    def covers(self, pcs) -> bool:
        """True when every pc in ``pcs`` was executed in the profile run."""
        return all(pc in self.entries for pc in pcs)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SlackProfile {self.program_name}@{self.config_name}"
                f"/{self.input_name}: {len(self.entries)} pcs>")


class _Accumulator:
    __slots__ = ("count", "issue_sum", "src_sum", "src_count", "out_sum",
                 "out_count", "slack_sum", "min_slack")

    def __init__(self, n_src: int):
        self.count = 0
        self.issue_sum = 0
        self.src_sum = [0] * n_src
        self.src_count = [0] * n_src
        self.out_sum = 0
        self.out_count = 0
        self.slack_sum = 0
        self.min_slack = SLACK_CAP


class SlackCollector:
    """Timing-core observer that builds a :class:`SlackProfile`.

    The core invokes :meth:`on_consume` whenever an instruction issues and
    consumes a producer's value (including store→load forwarding),
    :meth:`on_redirect` when a mispredicted control transfer redirects
    fetch, and :meth:`on_commit` for every committed singleton.

    Attaching a collector no longer forces the Python reference loop:
    ``supports_ckern_tap`` tells the core the same profile can be rebuilt
    post-hoc from the compiled kernel's packed event log via
    :meth:`ingest_ckern_tap`, bit-identical to the in-loop path (the
    parity suite in ``tests/pipeline/test_event_tap.py`` gates this).
    """

    #: The compiled kernel may run with the event tap instead of this
    #: collector's in-loop callbacks (see :meth:`ingest_ckern_tap`).
    supports_ckern_tap = True

    def __init__(self, program: Program, config_name: str = "",
                 input_name: str = "default"):
        self.program = program
        self.config_name = config_name
        self.input_name = input_name
        self._leaders = {block.start for block in program.basic_blocks()}
        self._anchor = 0
        self._acc: Dict[int, _Accumulator] = {}
        # Packed SoA accumulator from the native one-call profile build
        # (ckern.profile_build); exactly one of _acc / _packed_acc holds
        # data — profile() reads whichever path ran.
        self._packed_acc = None
        # Per-dynamic-producer minimum consumer slack, keyed by uop identity.
        self._pending_slack: Dict[int, int] = {}
        self._committed: List = []
        self._finished = False

    # -- core callbacks -----------------------------------------------------

    def on_consume(self, producer, consumer, cycle: int) -> None:
        """A consumer issued at ``cycle`` using ``producer``'s value."""
        ready = producer.out_actual_ready
        if ready >= (1 << 50):  # producer without a register value (store)
            ready = producer.store_resolve_cycle
        sample = cycle - ready
        key = id(producer)
        previous = self._pending_slack.get(key)
        if previous is None or sample < previous:
            self._pending_slack[key] = sample

    def on_redirect(self, uop, resolve_cycle: int) -> None:
        """A mispredicted transfer redirected fetch: zero slack."""
        # A mispredicted control transfer: any delay to its resolution
        # delays the redirect cycle-for-cycle — zero slack.
        self._pending_slack[id(uop)] = 0

    def on_commit(self, uop) -> None:
        """Aggregate issue/ready times for a committed singleton."""
        pc = uop.pc
        rec = uop.rec
        acc = self._acc.get(pc)
        if acc is None:
            acc = _Accumulator(len(rec.srcs))
            self._acc[pc] = acc
        anchor = self._anchor
        if pc in self._leaders:
            anchor = self._anchor = uop.issue_cycle
        acc.count += 1
        acc.issue_sum += uop.issue_cycle - anchor
        by_reg = {p.rec.rd: p for p in uop.producers}
        for position, src in enumerate(rec.srcs):
            producer = by_reg.get(src)
            if producer is not None:
                ready = producer.out_actual_ready
                if ready < (1 << 50):
                    acc.src_sum[position] += ready - anchor
                    acc.src_count[position] += 1
        if uop.writes:
            acc.out_sum += uop.out_actual_ready - anchor
            acc.out_count += 1
        self._committed.append(uop)

    def on_finish(self) -> None:
        """Finalize per-instance slack samples (min over consumers)."""
        if self._finished:
            return
        self._finished = True
        for uop in self._committed:
            sample = self._pending_slack.get(id(uop))
            if sample is None:
                sample = SLACK_CAP
            else:
                sample = max(0, min(sample, SLACK_CAP))
            acc = self._acc[uop.pc]
            acc.slack_sum += sample
            if sample < acc.min_slack:
                acc.min_slack = sample

    # -- post-hoc decode of the compiled kernel's event tap -----------------

    def ingest_ckern_tap(self, packed, events, n_words: int,
                         n_committed: int) -> None:
        """Rebuild the profile from the kernel's packed event log.

        ``events`` is the ``array('q')`` written by ``repro_run_tap``:
        ``n_words`` valid int64 words of ``(ix << 4) | tag, a, b``
        triples in simulation order. The decode mirrors the in-loop
        callbacks exactly:

        * an ISSUE event opens a fresh per-instance slack cell for its
          static record (re-issue after a squash orphans the old cell,
          just as a refetched ``Uop`` gets a fresh ``id()``);
        * CONSUME events fold ``cycle - ready`` samples into the
          producer's open cell (the kernel already applied the
          store-resolve fallback when computing the sample);
        * REDIRECT zeroes the cell (mispredicted transfers have no
          slack);
        * commit aggregation replays trace order over the committed
          prefix — commits retire in trace order, so the committed
          instances are exactly the last-issued instances of the first
          ``n_committed`` records — resolving each source position
          against the architecturally latest earlier writer, which is
          precisely what ``reg_map``-based producer links resolve to at
          the final rename of a committed instruction.

        Sums of ints and mins are order-independent, so the result is
        bit-identical to the Python observer path, profile for profile.
        """
        if self._finished:
            return
        self._finished = True
        if not self._acc:
            # Preferred path: one C call fuses the event fold with the
            # commit-prefix aggregation and hands back dense SoA columns
            # (bit-identical: int sums, same order, same clamps). Any
            # failure (REPRO_PURE_PY, no compiler, unsupported shape)
            # returns None and the reference loop below runs instead.
            n_static = len(self.program)
            is_leader = array("b", bytes(n_static))
            for pc in self._leaders:
                if 0 <= pc < n_static:
                    is_leader[pc] = 1
            native = _ckern.profile_build(
                events, n_words, n_committed, packed, is_leader,
                n_static, self._anchor, SLACK_CAP)
            if native is not None:
                self._packed_acc = native
                self._anchor = native.anchor
                return
        n = packed.n
        none = 1 << 62
        cells = array("q", [none]) * n
        issue_cycle = array("q", bytes(8 * n))
        out_ready = array("q", [1 << 60]) * n
        if not _tap_fold(events, n_words, cells, issue_cycle, out_ready):
            # Library gone mid-run: pure-Python reference fold.
            i = 0
            while i < n_words:
                w0 = events[i]
                a = events[i + 1]
                b = events[i + 2]
                i += 3
                tag = w0 & 15
                ix = w0 >> 4
                if tag == _TAP_CONSUME:
                    if a < cells[ix]:
                        cells[ix] = a
                elif tag == _TAP_ISSUE:
                    cells[ix] = none
                    issue_cycle[ix] = a
                    out_ready[ix] = b
                elif tag == _TAP_REDIRECT:
                    cells[ix] = 0
                # HANDLE / CDELAY events belong to the attribution decode.

        kinds = packed.kind
        pcs = packed.pc
        rds = packed.rd
        srcs = packed.srcs
        starts = packed.srcs_start
        leaders = self._leaders
        acc_map = self._acc
        anchor = self._anchor
        last_writer = [-1] * 32
        cap = SLACK_CAP
        big = 1 << 50
        for ix in range(n_committed):
            rd = rds[ix]
            if kinds[ix]:
                # Committed handles update the architectural last-writer
                # map but are profiled by the attribution decode, not
                # here (on_commit only ever saw singletons).
                if rd >= 0:
                    last_writer[rd] = ix
                continue
            pc = pcs[ix]
            s0 = starts[ix]
            s1 = starts[ix + 1]
            acc = acc_map.get(pc)
            if acc is None:
                acc = _Accumulator(s1 - s0)
                acc_map[pc] = acc
            if pc in leaders:
                anchor = issue_cycle[ix]
            acc.count += 1
            acc.issue_sum += issue_cycle[ix] - anchor
            src_sum = acc.src_sum
            src_count = acc.src_count
            for position in range(s1 - s0):
                src = srcs[s0 + position]
                if src == 0:
                    continue
                writer = last_writer[src]
                if writer < 0:
                    continue
                ready = out_ready[writer]
                if ready < big:
                    src_sum[position] += ready - anchor
                    src_count[position] += 1
            if rd >= 0:
                acc.out_sum += out_ready[ix] - anchor
                acc.out_count += 1
                last_writer[rd] = ix
            # on_finish, inline: clamp this instance's slack sample.
            sample = cells[ix]
            if sample == none:
                sample = cap
            elif sample < 0:
                sample = 0
            elif sample > cap:
                sample = cap
            acc.slack_sum += sample
            if sample < acc.min_slack:
                acc.min_slack = sample
        self._anchor = anchor

    # -- output ---------------------------------------------------------------

    def profile(self) -> SlackProfile:
        """The aggregated slack profile (requires the run to have finished)."""
        if not self._finished:
            self.on_finish()
        entries: Dict[int, ProfileEntry] = {}
        pk = self._packed_acc
        if pk is not None:
            # Rehydrate from the native SoA columns. `order` lists pcs
            # in first-commit order — the same iteration order as the
            # reference `_acc` dict — and every division below is the
            # identical single int/int division the reference performs,
            # so the resulting profile pickles byte-for-byte the same.
            stride = _PLAN_MAX_SRC
            for k in range(pk.n_order):
                pc = pk.order[k]
                count = pk.count[pc]
                base = pc * stride
                src_ready = tuple(
                    (pk.src_sum[base + i] / pk.src_count[base + i])
                    if pk.src_count[base + i] else NEVER_READY
                    for i in range(pk.n_src[pc]))
                out_ready = (pk.out_sum[pc] / pk.out_count[pc]
                             if pk.out_count[pc] else None)
                entries[pc] = ProfileEntry(
                    pc, count, pk.issue_sum[pc] / count, src_ready,
                    out_ready, pk.slack_sum[pc] / count, pk.min_slack[pc])
            return SlackProfile(self.program.name, self.config_name,
                                self.input_name, entries)
        for pc, acc in self._acc.items():
            count = acc.count
            src_ready = tuple(
                (acc.src_sum[i] / acc.src_count[i])
                if acc.src_count[i] else NEVER_READY
                for i in range(len(acc.src_sum)))
            out_ready = (acc.out_sum / acc.out_count
                         if acc.out_count else None)
            entries[pc] = ProfileEntry(
                pc, count, acc.issue_sum / count, src_ready, out_ready,
                acc.slack_sum / count, acc.min_slack)
        return SlackProfile(self.program.name, self.config_name,
                            self.input_name, entries)
