"""The five mini-graph selectors of the paper (§3, §4) plus ablations.

Every selector produces a *starting pool* of sites; the shared greedy
budgeted procedure in :mod:`repro.minigraph.selection` then picks templates.
All selectors admit the shape-safe sites (no serialization potential) and
differ only in their treatment of potentially-serializing ones:

================  ==========================================================
Struct-All        admit every potentially-serializing site
Struct-None       admit none
Struct-Bounded    admit those whose output delay is structurally bounded
Slack-Profile     admit those rules #1–#4 predict to be harmless
Slack-Dynamic     admit all (Struct-All pool) — harmful sites are disabled
                  at run time by the hardware monitor
Read-Port         admit bounded sites within a register-read-port budget;
                  penalize over-budget shape-safe sites (searchable family)
================  ==========================================================

Slack-Profile's ablation variants (Figure 7): ``delay`` ignores rule #4
(rejects on any predicted output delay) and ``sial`` replaces delay
accounting with the operand-arrival-order heuristic of macro-op scheduling.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Set, Type

from .candidates import Candidate, candidate_columns, enumerate_candidates
from .delay_model import (
    VERDICT_DEGRADES, VERDICT_DELAY_ONLY, VERDICT_PROFILED, VERDICT_SIAL,
    assess, assess_batch,
)
from .selection import MiniGraphPlan, select
from .serialization import SerializationClass
from .slack import SlackProfile
from .templates import MGSite, build_templates

#: Selector family registry: ``kind`` string -> class. Populated by
#: :func:`register_family`; the single source the spec round-trip
#: (:func:`selector_from_spec`) and the tuner's search space draw from.
SELECTOR_FAMILIES: Dict[str, Type["Selector"]] = {}


def register_family(cls: Type["Selector"]) -> Type["Selector"]:
    """Class decorator: register a selector family under its ``kind``."""
    if cls.kind in SELECTOR_FAMILIES:
        raise ValueError(f"duplicate selector kind {cls.kind!r}")
    SELECTOR_FAMILIES[cls.kind] = cls
    return cls


def selector_from_spec(spec: dict) -> "Selector":
    """Inverse of :meth:`Selector.spec` via the family registry."""
    params = dict(spec)
    kind = params.pop("kind", None)
    cls = SELECTOR_FAMILIES.get(kind)
    if cls is None:
        raise ValueError(f"unknown selector spec {spec!r}")
    return cls.from_params(params)


class Selector:
    """Base selector: named filter over the candidate site pool.

    Every family implements the uniform hyperparameter protocol:
    ``kind`` is the stable family id, :meth:`params` the JSON-scalar
    hyperparameters, and ``cls.from_params(sel.params())`` reconstructs
    a selector producing bit-identical plans. :meth:`spec` — the
    content-address component and cross-process wire format — is always
    ``{"kind": kind, **params()}``, so the tuner, store keys, and
    reports all derive from one source.
    """

    #: Stable family id (the ``kind`` field of :meth:`spec`).
    kind = "base"
    name = "base"
    #: Selectors that consult a slack profile set this.
    needs_profile = False

    def admit(self, site: MGSite, profile: Optional[SlackProfile]) -> bool:
        """Whether a potentially-serializing site joins the pool."""
        raise NotImplementedError

    def params(self) -> dict:
        """JSON-scalar hyperparameters (empty for knob-free families)."""
        return {}

    @classmethod
    def from_params(cls, params: dict) -> "Selector":
        """Rebuild a selector from :meth:`params` output."""
        return cls(**params)

    @property
    def display_name(self) -> str:
        """Stable human-readable name for tables and plots."""
        return self.name

    def spec(self) -> dict:
        """Canonical JSON-serializable parameter set.

        Used both as a content-address component (every parameter that
        can change the selection must appear) and to reconstruct the
        selector in scheduler worker processes
        (:func:`repro.exec.tasks.selector_from_spec`).
        """
        return {"kind": self.kind, **self.params()}

    def build_pool(self, sites: Iterable[MGSite],
                   profile: Optional[SlackProfile],
                   candidates=None) -> List[MGSite]:
        """Shape-safe sites plus the admitted serializing ones.

        ``candidates`` is the enumeration the sites were built from, in
        site-id order; families that can score whole candidate sets
        natively (Slack-Profile, Read-Port) use its packed columns, the
        rest ignore it — admission decisions are identical either way.
        """
        pool = []
        for site in sites:
            if site.candidate.serialization is SerializationClass.NONE:
                pool.append(site)
            elif self.admit(site, profile):
                pool.append(site)
        return pool

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Selector {self.name}>"


@register_family
class StructAll(Selector):
    """Serialization-blind: maximize coverage (§3)."""

    kind = name = "struct-all"

    def admit(self, site: MGSite, profile) -> bool:
        """Admit everything."""
        return True


@register_family
class StructNone(Selector):
    """Conservative: reject all serialization potential (§3)."""

    kind = name = "struct-none"

    def admit(self, site: MGSite, profile) -> bool:
        """Admit nothing serializing."""
        return False


@register_family
class StructBounded(Selector):
    """Heuristic: admit only structurally bounded serialization (§4.2)."""

    kind = name = "struct-bounded"

    def admit(self, site: MGSite, profile) -> bool:
        """Admit only structurally bounded delay."""
        return site.candidate.serialization is SerializationClass.BOUNDED


@register_family
class SlackProfileSelector(Selector):
    """Quantitative selection from local slack profiles (§4.3).

    ``variant`` selects the model: ``"full"`` applies rules #1–#4;
    ``"delay"`` applies rules #1–#3 and rejects on any output delay
    (Slack-Profile-Delay in Figure 7); ``"sial"`` applies the
    operand-arrival heuristic (Slack-Profile-SIAL).

    ``measured_latencies`` enables the future-work extension from the
    paper's *mcf* footnote: rule #2 uses profiled (cache-aware) latencies
    instead of optimistic hit latencies.
    """

    kind = "slack-profile"
    needs_profile = True

    def __init__(self, variant: str = "full",
                 unprofiled_ok: bool = True,
                 measured_latencies: bool = False):
        if variant not in ("full", "delay", "sial"):
            raise ValueError(f"unknown Slack-Profile variant {variant!r}")
        self.variant = variant
        self.unprofiled_ok = unprofiled_ok
        self.measured_latencies = measured_latencies
        self.name = "slack-profile" if variant == "full" \
            else f"slack-profile-{variant}"
        if measured_latencies:
            self.name += "-measured"

    def admit(self, site: MGSite, profile: Optional[SlackProfile]) -> bool:
        """Rules #1–#4 (or the variant) against the slack profile."""
        if profile is None:
            raise ValueError(f"{self.name} requires a slack profile")
        assessment = assess(site.candidate, profile,
                            measured_latencies=self.measured_latencies)
        if assessment is None:
            # Candidate code never ran during profiling: its selection
            # frequency is zero anyway; admission is moot but configurable.
            return self.unprofiled_ok
        if self.variant == "full":
            return not assessment.degrades
        if self.variant == "delay":
            return not assessment.degrades_delay_only
        return not assessment.degrades_sial

    #: Verdict bit whose *set* state rejects a site, per variant.
    _REJECT_BITS = {"full": VERDICT_DEGRADES, "delay": VERDICT_DELAY_ONLY,
                    "sial": VERDICT_SIAL}

    def build_pool(self, sites: Iterable[MGSite],
                   profile: Optional[SlackProfile],
                   candidates=None) -> List[MGSite]:
        """One native scoring call for the whole site set when possible.

        Site ids index the enumeration order (``build_templates``
        assigns them candidate by candidate), so the verdict for
        ``site`` is ``verdicts[site.id]``. Sites outside the packed set
        and non-native runs go through :meth:`admit` per site — the
        decisions are bit-identical, gated by the parity suite.
        """
        verdicts = None
        if candidates is not None and profile is not None:
            verdicts = assess_batch(
                candidates, profile,
                measured_latencies=self.measured_latencies)
        if verdicts is None:
            return super().build_pool(sites, profile)
        reject_bit = self._REJECT_BITS[self.variant]
        n = len(verdicts)
        pool = []
        for site in sites:
            if site.candidate.serialization is SerializationClass.NONE:
                pool.append(site)
                continue
            sid = site.id
            if sid >= n:
                if self.admit(site, profile):
                    pool.append(site)
                continue
            verdict = verdicts[sid]
            if not verdict & VERDICT_PROFILED:
                if self.unprofiled_ok:
                    pool.append(site)
            elif not verdict & reject_bit:
                pool.append(site)
        return pool

    def params(self) -> dict:
        """All three knobs — ``unprofiled_ok`` is not encoded in the name."""
        return {"variant": self.variant,
                "unprofiled_ok": self.unprofiled_ok,
                "measured_latencies": self.measured_latencies}


@register_family
class SlackDynamicSelector(Selector):
    """Static side of Slack-Dynamic (§4.4): the aggressive Struct-All pool.

    Harmful mini-graphs are disabled at run time by
    :class:`repro.minigraph.dynamic.SlackDynamicPolicy`, which the harness
    attaches to the timing core when this selector is used.
    """

    kind = name = "slack-dynamic"

    def admit(self, site: MGSite, profile) -> bool:
        """Admit everything; pruning happens at run time."""
        return True


@register_family
class FixedSetSelector(Selector):
    """Admits exactly the given candidate sites (limit-study support)."""

    kind = name = "fixed-set"

    def __init__(self, allowed_site_ids: Set[int]):
        self.allowed = set(allowed_site_ids)

    def build_pool(self, sites: Iterable[MGSite], profile,
                   candidates=None) -> List[MGSite]:
        """Exactly the allowed site ids, ignoring serialization class."""
        return [site for site in sites if site.id in self.allowed]

    def admit(self, site: MGSite, profile) -> bool:  # pragma: no cover
        return site.id in self.allowed

    def params(self) -> dict:
        return {"allowed": sorted(self.allowed)}

    @classmethod
    def from_params(cls, params: dict) -> "FixedSetSelector":
        return cls(set(params["allowed"]))


@register_family
class ReadPortAwareSelector(Selector):
    """Register-pressure-aware selection: score sites by read-port demand.

    A mini-graph template reads each *external* register input through a
    register-file read port at dispatch; templates with many external
    inputs are exactly the ones that defeat the PRF read-port-reduction
    schemes the related work targets. This family makes that pressure a
    first-class selection knob:

    - ``port_budget`` — external register inputs a site may demand
      "for free" (the ports the sharing scheme can always supply).
    - ``pressure_weight`` — how strongly demand above the budget is
      penalized. Each unit of pressure multiplies a site's value by
      ``1 - pressure_weight / MAX_EXT_INPUTS``; sites whose value drops
      to zero or below leave the pool.

    Potentially-serializing sites get no such discount: they must fit
    the budget outright (and be structurally bounded) to join the pool.
    Any pool subset is a legal plan, so the family passes the lockstep,
    plan-lint, and fuzz gates by construction.
    """

    kind = name = "read-port"

    #: Candidates expose at most three external register inputs
    #: (mini-graph encoding limit, templates.py).
    MAX_EXT_INPUTS = 3

    def __init__(self, port_budget: int = 2, pressure_weight: float = 1.0):
        port_budget = int(port_budget)
        pressure_weight = float(pressure_weight)
        if port_budget < 0:
            raise ValueError(f"port_budget must be >= 0, got {port_budget}")
        if pressure_weight < 0.0:
            raise ValueError(
                f"pressure_weight must be >= 0, got {pressure_weight}")
        self.port_budget = port_budget
        self.pressure_weight = pressure_weight

    @staticmethod
    def demand(site: MGSite) -> int:
        """Read-port demand: the site's external register input count."""
        return len(site.candidate.ext_inputs)

    def pressure(self, site: MGSite) -> int:
        """Demand above the port budget (0 for fitting sites)."""
        return max(0, self.demand(site) - self.port_budget)

    def score_scale(self, site: MGSite) -> float:
        """Value multiplier in [0, 1] after the pressure penalty."""
        penalty = self.pressure_weight * self.pressure(site) \
            / self.MAX_EXT_INPUTS
        return max(0.0, 1.0 - penalty)

    def admit(self, site: MGSite, profile) -> bool:
        """Serializing sites must be bounded *and* fit the budget."""
        if site.candidate.serialization is SerializationClass.UNBOUNDED:
            return False
        return self.pressure(site) == 0

    def build_pool(self, sites: Iterable[MGSite], profile,
                   candidates=None) -> List[MGSite]:
        """Shape-safe sites keep a positive post-penalty score; the rest
        pass :meth:`admit`.

        With ``candidates`` provided, demand and serialization class come
        from the packed candidate columns (no per-site object walks);
        the admission decisions are identical to the per-site path.
        """
        cols = candidate_columns(candidates) if candidates is not None \
            else None
        if cols is not None:
            n_cand, _start, _end, c_ext, _out, c_ser = cols
            pool = []
            for site in sites:
                sid = site.id
                if sid >= n_cand:
                    if (site.candidate.serialization
                            is SerializationClass.NONE):
                        if self.score_scale(site) > 0.0:
                            pool.append(site)
                    elif self.admit(site, profile):
                        pool.append(site)
                    continue
                pressure = max(0, (c_ext[sid] & 3) - self.port_budget)
                if c_ser[sid] == 0:  # SER_NONE
                    penalty = (self.pressure_weight * pressure
                               / self.MAX_EXT_INPUTS)
                    if max(0.0, 1.0 - penalty) > 0.0:
                        pool.append(site)
                elif c_ser[sid] != 2 and pressure == 0:  # not UNBOUNDED
                    pool.append(site)
            return pool
        pool = []
        for site in sites:
            if site.candidate.serialization is SerializationClass.NONE:
                if self.score_scale(site) > 0.0:
                    pool.append(site)
            elif self.admit(site, profile):
                pool.append(site)
        return pool

    def params(self) -> dict:
        return {"port_budget": self.port_budget,
                "pressure_weight": self.pressure_weight}

    @property
    def display_name(self) -> str:
        return (f"read-port(b={self.port_budget},"
                f"w={self.pressure_weight:g})")


def make_plan(program, freq_counts: List[int], selector: Selector,
              profile: Optional[SlackProfile] = None, budget: int = 512,
              max_size: int = 4,
              candidates: Optional[List[Candidate]] = None,
              verify: Optional[bool] = None,
              sites: Optional[List[MGSite]] = None) -> MiniGraphPlan:
    """Enumerate, filter, and select mini-graphs for ``program``.

    ``freq_counts`` are per-static-PC dynamic execution counts from the
    profiling input (used both for template scores and, with profile-based
    selectors, for rule evaluation via ``profile``).

    ``sites`` lets callers that plan repeatedly over the same
    (program, trace) — fuzz sweeps, experiment matrices — reuse one
    ``build_templates`` pass: enumeration and template grouping are
    selector-independent, so the hoisted sites produce identical plans.
    When provided, it must come from ``candidates`` (site ids index that
    enumeration).

    ``verify=True`` audits the resulting plan against the paper's
    structural contract (:func:`repro.check.lint.check_plan`) and raises
    :class:`repro.check.lint.PlanInvariantError` on any violation. The
    default consults the ``REPRO_CHECK_PLANS`` environment variable, so a
    whole run can be hardened without touching call sites.
    """
    if candidates is None and sites is None:
        candidates = enumerate_candidates(program, max_size=max_size)
    if sites is None:
        templates = build_templates(candidates, freq_counts)
        sites = [site for template in templates for site in template.sites]
    pool = selector.build_pool(sites, profile, candidates)
    plan = select(pool, budget=budget)
    if verify is None:
        verify = bool(os.environ.get("REPRO_CHECK_PLANS"))
    if verify:
        from ..check.lint import check_plan
        check_plan(program, plan, max_size=max_size, budget=budget)
    return plan
