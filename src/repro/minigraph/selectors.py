"""The five mini-graph selectors of the paper (§3, §4) plus ablations.

Every selector produces a *starting pool* of sites; the shared greedy
budgeted procedure in :mod:`repro.minigraph.selection` then picks templates.
All selectors admit the shape-safe sites (no serialization potential) and
differ only in their treatment of potentially-serializing ones:

================  ==========================================================
Struct-All        admit every potentially-serializing site
Struct-None       admit none
Struct-Bounded    admit those whose output delay is structurally bounded
Slack-Profile     admit those rules #1–#4 predict to be harmless
Slack-Dynamic     admit all (Struct-All pool) — harmful sites are disabled
                  at run time by the hardware monitor
================  ==========================================================

Slack-Profile's ablation variants (Figure 7): ``delay`` ignores rule #4
(rejects on any predicted output delay) and ``sial`` replaces delay
accounting with the operand-arrival-order heuristic of macro-op scheduling.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Set

from .candidates import Candidate, enumerate_candidates
from .delay_model import assess
from .selection import MiniGraphPlan, select
from .serialization import SerializationClass
from .slack import SlackProfile
from .templates import MGSite, build_templates


class Selector:
    """Base selector: named filter over the candidate site pool."""

    name = "base"
    #: Selectors that consult a slack profile set this.
    needs_profile = False

    def admit(self, site: MGSite, profile: Optional[SlackProfile]) -> bool:
        """Whether a potentially-serializing site joins the pool."""
        raise NotImplementedError

    def spec(self) -> dict:
        """Canonical JSON-serializable parameter set.

        Used both as a content-address component (every parameter that
        can change the selection must appear) and to reconstruct the
        selector in scheduler worker processes
        (:func:`repro.exec.tasks.selector_from_spec`).
        """
        return {"kind": self.name}

    def build_pool(self, sites: Iterable[MGSite],
                   profile: Optional[SlackProfile]) -> List[MGSite]:
        """Shape-safe sites plus the admitted serializing ones."""
        pool = []
        for site in sites:
            if site.candidate.serialization is SerializationClass.NONE:
                pool.append(site)
            elif self.admit(site, profile):
                pool.append(site)
        return pool

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Selector {self.name}>"


class StructAll(Selector):
    """Serialization-blind: maximize coverage (§3)."""

    name = "struct-all"

    def admit(self, site: MGSite, profile) -> bool:
        """Admit everything."""
        return True


class StructNone(Selector):
    """Conservative: reject all serialization potential (§3)."""

    name = "struct-none"

    def admit(self, site: MGSite, profile) -> bool:
        """Admit nothing serializing."""
        return False


class StructBounded(Selector):
    """Heuristic: admit only structurally bounded serialization (§4.2)."""

    name = "struct-bounded"

    def admit(self, site: MGSite, profile) -> bool:
        """Admit only structurally bounded delay."""
        return site.candidate.serialization is SerializationClass.BOUNDED


class SlackProfileSelector(Selector):
    """Quantitative selection from local slack profiles (§4.3).

    ``variant`` selects the model: ``"full"`` applies rules #1–#4;
    ``"delay"`` applies rules #1–#3 and rejects on any output delay
    (Slack-Profile-Delay in Figure 7); ``"sial"`` applies the
    operand-arrival heuristic (Slack-Profile-SIAL).

    ``measured_latencies`` enables the future-work extension from the
    paper's *mcf* footnote: rule #2 uses profiled (cache-aware) latencies
    instead of optimistic hit latencies.
    """

    needs_profile = True

    def __init__(self, variant: str = "full",
                 unprofiled_ok: bool = True,
                 measured_latencies: bool = False):
        if variant not in ("full", "delay", "sial"):
            raise ValueError(f"unknown Slack-Profile variant {variant!r}")
        self.variant = variant
        self.unprofiled_ok = unprofiled_ok
        self.measured_latencies = measured_latencies
        self.name = "slack-profile" if variant == "full" \
            else f"slack-profile-{variant}"
        if measured_latencies:
            self.name += "-measured"

    def admit(self, site: MGSite, profile: Optional[SlackProfile]) -> bool:
        """Rules #1–#4 (or the variant) against the slack profile."""
        if profile is None:
            raise ValueError(f"{self.name} requires a slack profile")
        assessment = assess(site.candidate, profile,
                            measured_latencies=self.measured_latencies)
        if assessment is None:
            # Candidate code never ran during profiling: its selection
            # frequency is zero anyway; admission is moot but configurable.
            return self.unprofiled_ok
        if self.variant == "full":
            return not assessment.degrades
        if self.variant == "delay":
            return not assessment.degrades_delay_only
        return not assessment.degrades_sial

    def spec(self) -> dict:
        """All three knobs — ``unprofiled_ok`` is not encoded in the name."""
        return {"kind": "slack-profile", "variant": self.variant,
                "unprofiled_ok": self.unprofiled_ok,
                "measured_latencies": self.measured_latencies}


class SlackDynamicSelector(Selector):
    """Static side of Slack-Dynamic (§4.4): the aggressive Struct-All pool.

    Harmful mini-graphs are disabled at run time by
    :class:`repro.minigraph.dynamic.SlackDynamicPolicy`, which the harness
    attaches to the timing core when this selector is used.
    """

    name = "slack-dynamic"

    def admit(self, site: MGSite, profile) -> bool:
        """Admit everything; pruning happens at run time."""
        return True


class FixedSetSelector(Selector):
    """Admits exactly the given candidate sites (limit-study support)."""

    name = "fixed-set"

    def __init__(self, allowed_site_ids: Set[int]):
        self.allowed = set(allowed_site_ids)

    def build_pool(self, sites: Iterable[MGSite], profile) -> List[MGSite]:
        """Exactly the allowed site ids, ignoring serialization class."""
        return [site for site in sites if site.id in self.allowed]

    def admit(self, site: MGSite, profile) -> bool:  # pragma: no cover
        return site.id in self.allowed

    def spec(self) -> dict:
        return {"kind": "fixed-set", "allowed": sorted(self.allowed)}


def make_plan(program, freq_counts: List[int], selector: Selector,
              profile: Optional[SlackProfile] = None, budget: int = 512,
              max_size: int = 4,
              candidates: Optional[List[Candidate]] = None,
              verify: Optional[bool] = None) -> MiniGraphPlan:
    """Enumerate, filter, and select mini-graphs for ``program``.

    ``freq_counts`` are per-static-PC dynamic execution counts from the
    profiling input (used both for template scores and, with profile-based
    selectors, for rule evaluation via ``profile``).

    ``verify=True`` audits the resulting plan against the paper's
    structural contract (:func:`repro.check.lint.check_plan`) and raises
    :class:`repro.check.lint.PlanInvariantError` on any violation. The
    default consults the ``REPRO_CHECK_PLANS`` environment variable, so a
    whole run can be hardened without touching call sites.
    """
    if candidates is None:
        candidates = enumerate_candidates(program, max_size=max_size)
    templates = build_templates(candidates, freq_counts)
    sites = [site for template in templates for site in template.sites]
    pool = selector.build_pool(sites, profile)
    plan = select(pool, budget=budget)
    if verify is None:
        verify = bool(os.environ.get("REPRO_CHECK_PLANS"))
    if verify:
        from ..check.lint import check_plan
        check_plan(program, plan, max_size=max_size, budget=budget)
    return plan
