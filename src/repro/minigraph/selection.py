"""Greedy, budgeted mini-graph template selection (§2 "Selection").

All selectors share this procedure. Given a starting pool of sites (the
selector's serialization filter already applied), sites are grouped by
template and each template scored ``(n - 1) * f`` — its singleton-slot
savings times profiled frequency. The algorithm repeatedly commits the
highest-scoring template, claims its (non-overlapping) sites, discounts
templates whose sites overlap the claimed instructions, and stops at the
MGT budget or when no positive-score template remains.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .templates import MGSite, MGTemplate


class MiniGraphPlan:
    """The outcome of selection for one program: the sites to aggregate."""

    def __init__(self, sites: List[MGSite], templates: List[MGTemplate]):
        self.sites = sorted(sites, key=lambda s: s.start)
        self.templates = templates
        self._by_start = {site.start: site for site in self.sites}

    def site_at(self, pc: int) -> Optional[MGSite]:
        """The selected site starting at ``pc``, if any."""
        return self._by_start.get(pc)

    @property
    def n_templates(self) -> int:
        return len(self.templates)

    def static_coverage(self, program_len: int) -> float:
        """Fraction of static instructions embedded in selected sites."""
        covered = sum(site.end - site.start for site in self.sites)
        return covered / program_len if program_len else 0.0

    def expected_dynamic_coverage(self, total_dynamic: int) -> float:
        """Coverage predicted from profile frequencies."""
        if not total_dynamic:
            return 0.0
        embedded = sum((site.end - site.start) * site.frequency
                       for site in self.sites)
        return embedded / total_dynamic

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MiniGraphPlan {len(self.sites)} sites, "
                f"{len(self.templates)} templates>")


def select(pool: List[MGSite], budget: int = 512) -> MiniGraphPlan:
    """Greedy budgeted selection over a pool of sites.

    Sites are grouped by template; overlap between a chosen template's
    instances and remaining candidates is resolved by *discounting*: an
    overlapped site contributes nothing to its template's score and is
    never instantiated.
    """
    by_template: Dict[int, List[MGSite]] = {}
    templates: Dict[int, MGTemplate] = {}
    for site in pool:
        by_template.setdefault(site.template.id, []).append(site)
        templates[site.template.id] = site.template

    claimed: Set[int] = set()  # static PCs already embedded
    chosen_sites: List[MGSite] = []
    chosen_templates: List[MGTemplate] = []

    def live_sites(template_id: int) -> List[MGSite]:
        return [site for site in by_template[template_id]
                if not any(pc in claimed for pc in
                           range(site.start, site.end))]

    def score(sites: List[MGSite]) -> int:
        return sum(site.score_contribution for site in sites)

    remaining = set(by_template)
    while remaining and len(chosen_templates) < budget:
        best_id = -1
        best_score = 0
        best_sites: List[MGSite] = []
        for template_id in remaining:
            sites = live_sites(template_id)
            if not sites:
                continue
            s = score(sites)
            if s > best_score:
                best_id, best_score, best_sites = template_id, s, sites
        if best_id < 0:
            break
        remaining.discard(best_id)
        chosen_templates.append(templates[best_id])
        # Claim sites greedily in static order; same-template instances
        # may overlap each other, in which case later ones are skipped.
        for site in best_sites:
            pcs = range(site.start, site.end)
            if any(pc in claimed for pc in pcs):
                continue
            claimed.update(pcs)
            chosen_sites.append(site)
    return MiniGraphPlan(chosen_sites, chosen_templates)


def empty_plan() -> MiniGraphPlan:
    """A plan that aggregates nothing (the singleton baseline)."""
    return MiniGraphPlan([], [])
