"""Register liveness and dataflow analysis.

Mini-graph legality depends on liveness: register values produced inside a
candidate group that are *dead* after the group are "interior" — they need
no physical register, which is the source of the capacity amplification
(§2 of the paper). Identifying interior values requires classic backward
liveness analysis over the control-flow graph, performed here.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..isa.instruction import Instruction
from ..isa.opcodes import JR, OC_BRANCH, OC_HALT, OC_JUMP
from ..isa.program import Program

ALL_REGS: FrozenSet[int] = frozenset(range(1, 32))


def block_successors(program: Program) -> List[List[int]]:
    """Successor block indices for each basic block.

    Indirect jumps (``jr``) have statically unknown targets; the analysis
    treats them conservatively (see :func:`liveness`).
    """
    blocks = program.basic_blocks()
    successors: List[List[int]] = []
    n = len(program.instructions)
    for block in blocks:
        last = program.instructions[block.end - 1]
        succ: List[int] = []
        cls = last.opclass
        if cls == OC_BRANCH:
            succ.append(program.block_of(last.imm).index)
            if block.end < n:
                succ.append(program.block_of(block.end).index)
        elif cls == OC_JUMP:
            if last.op != JR:
                succ.append(program.block_of(last.imm).index)
            # jr: unknown successors, handled conservatively in liveness
        elif cls == OC_HALT:
            pass
        elif block.end < n:
            succ.append(program.block_of(block.end).index)
        successors.append(succ)
    return successors


def _uses_defs(inst: Instruction) -> Tuple[Set[int], Set[int]]:
    uses = {r for r in inst.srcs if r != 0}
    defs = {inst.rd} if inst.writes_reg else set()
    return uses, defs


def liveness(program: Program) -> List[FrozenSet[int]]:
    """Live-out register set at each instruction.

    ``result[pc]`` is the set of registers whose values may be read after
    the instruction at ``pc`` executes. Blocks ending in indirect jumps
    (and the block reached by falling off the end of the program) use the
    fully-conservative live-out set of all registers.
    """
    blocks = program.basic_blocks()
    insts = program.instructions
    successors = block_successors(program)

    # Per-block gen (upward-exposed uses) and kill (defs) sets.
    gen: List[Set[int]] = []
    kill: List[Set[int]] = []
    for block in blocks:
        g: Set[int] = set()
        k: Set[int] = set()
        for pc in range(block.start, block.end):
            uses, defs = _uses_defs(insts[pc])
            g |= uses - k
            k |= defs
        gen.append(g)
        kill.append(k)

    live_in: List[Set[int]] = [set(g) for g in gen]
    live_out: List[Set[int]] = []
    for block in blocks:
        last = insts[block.end - 1]
        if last.op == JR:
            live_out.append(set(ALL_REGS))
        else:
            live_out.append(set())

    # Iterate to fixpoint (reverse order converges quickly).
    changed = True
    while changed:
        changed = False
        for index in range(len(blocks) - 1, -1, -1):
            out = live_out[index]
            if insts[blocks[index].end - 1].op != JR:
                new_out: Set[int] = set()
                for succ in successors[index]:
                    new_out |= live_in[succ]
                if new_out != out:
                    live_out[index] = new_out
                    out = new_out
                    changed = True
            new_in = gen[index] | (out - kill[index])
            if new_in != live_in[index]:
                live_in[index] = new_in
                changed = True

    # Expand to per-instruction live-out sets.
    result: List[FrozenSet[int]] = [frozenset()] * len(insts)
    for index, block in enumerate(blocks):
        live = set(live_out[index])
        for pc in range(block.end - 1, block.start - 1, -1):
            result[pc] = frozenset(live)
            uses, defs = _uses_defs(insts[pc])
            live -= defs
            live |= uses
    return result


def group_interface(program: Program, start: int, end: int,
                    live_out_sets: List[FrozenSet[int]]):
    """External interface of the instruction group ``[start, end)``.

    Returns ``(ext_inputs, outputs)`` where ``ext_inputs`` is an ordered
    list of ``(reg, first_consumer_offset, operand_position)`` triples for
    registers read from outside the group, and ``outputs`` is the list of
    ``(reg, producer_offset)`` for registers written in the group that are
    live after it. Offsets are relative to ``start``.
    """
    insts = program.instructions
    defined: Dict[int, int] = {}
    ext_inputs: List[Tuple[int, int, int]] = []
    seen_ext: Set[int] = set()
    for offset in range(end - start):
        inst = insts[start + offset]
        for position, src in enumerate(inst.srcs):
            if src == 0 or src in defined:
                continue
            if src not in seen_ext:
                seen_ext.add(src)
                ext_inputs.append((src, offset, position))
        if inst.writes_reg:
            defined[inst.rd] = offset
    live_after = live_out_sets[end - 1]
    outputs = [(reg, offset) for reg, offset in defined.items()
               if reg in live_after]
    outputs.sort(key=lambda pair: pair[1])
    return ext_inputs, outputs


def internal_edges(program: Program, start: int,
                   end: int) -> List[Tuple[int, int]]:
    """Internal dataflow edges ``(producer_offset, consumer_offset)``.

    An edge exists when a group instruction reads a register most recently
    written by an *earlier* instruction of the same group.
    """
    insts = program.instructions
    last_writer: Dict[int, int] = {}
    edges: List[Tuple[int, int]] = []
    for offset in range(end - start):
        inst = insts[start + offset]
        for src in inst.srcs:
            if src in last_writer:
                edges.append((last_writer[src], offset))
        if inst.writes_reg:
            last_writer[inst.rd] = offset
    return sorted(set(edges))


def is_connected(size: int, edges: List[Tuple[int, int]]) -> bool:
    """True if the group's internal dataflow graph is weakly connected."""
    if size <= 1:
        return True
    parent = list(range(size))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in edges:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb
    root = find(0)
    return all(find(i) == root for i in range(size))


def reaches(size: int, edges: List[Tuple[int, int]], source: int,
            target: int) -> bool:
    """True if dataflow can carry ``source``'s result into ``target``."""
    if source == target:
        return True
    adjacency: Dict[int, List[int]] = {}
    for a, b in edges:
        adjacency.setdefault(a, []).append(b)
    frontier = [source]
    seen = {source}
    while frontier:
        node = frontier.pop()
        for nxt in adjacency.get(node, ()):
            if nxt == target:
                return True
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return False
