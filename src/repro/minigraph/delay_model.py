"""The Slack-Profile delay model: rules #1–#4 (Figure 5 of the paper).

Given a singleton execution schedule (the slack profile) the model
computes, for a candidate mini-graph, the issue delay aggregation would
induce on each constituent, and whether the delay on any of the
mini-graph's outputs (register value, store, branch) exceeds that output's
local slack — in which case forming the mini-graph is predicted to degrade
performance.

Rules (verbatim from the paper):

1. *External serialization*:
   ``Issue_MG(0) = MAX over i in mg-inputs (Ready(i), Issue(0))``
2. *Internal serialization*:
   ``Issue_MG(n) = Issue_MG(n-1) + Ex-Lat(n-1)``
3. *Instruction delay*:
   ``Delay_MG(n) = Issue_MG(n) - Issue(n)``
4. *Performance degradation*:
   ``Degrade_MG = OR over i in mg-outputs (Delay_MG(i) > Slack(i))``

Latencies are the optimistic nominal ones (loads assumed to hit), as in the
paper (see the *mcf* footnote in §5.1).
"""

from __future__ import annotations

from array import array
from typing import List, Optional

from ..pipeline import ckern as _ckern
from ..pipeline.ckern import PLAN_MAX_SRC as _PLAN_MAX_SRC
from .candidates import Candidate, _static_columns, candidate_columns
from .slack import SlackProfile

_NEG_INF = float("-inf")

#: Verdict bitmask layout returned by :func:`assess_batch` (must match
#: the bits written by ``repro_score_candidates`` in ``_ckern.c``).
VERDICT_PROFILED = 1
VERDICT_DEGRADES = 2
VERDICT_DELAY_ONLY = 4
VERDICT_SIAL = 8


class DelayAssessment:
    """Outcome of applying the model to one candidate site."""

    __slots__ = ("candidate", "issue_singleton", "issue_mg", "delays",
                 "output_indices", "degrades", "degrades_delay_only",
                 "degrades_sial", "profiled")

    def __init__(self, candidate: Candidate, issue_singleton: List[float],
                 issue_mg: List[float], delays: List[float],
                 output_indices: List[int], degrades: bool,
                 degrades_delay_only: bool, degrades_sial: bool,
                 profiled: bool):
        self.candidate = candidate
        self.issue_singleton = issue_singleton
        self.issue_mg = issue_mg
        self.delays = delays
        self.output_indices = output_indices
        self.degrades = degrades
        self.degrades_delay_only = degrades_delay_only
        self.degrades_sial = degrades_sial
        self.profiled = profiled

    @property
    def max_output_delay(self) -> float:
        if not self.output_indices:
            return 0.0
        return max(self.delays[i] for i in self.output_indices)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DelayAssessment [{self.candidate.start},"
                f"{self.candidate.end}) degrade={self.degrades}>")


def assess(candidate: Candidate, profile: SlackProfile,
           delay_tolerance: float = 0.0,
           measured_latencies: bool = False) -> Optional[DelayAssessment]:
    """Apply rules #1–#4 to ``candidate`` under ``profile``.

    Returns ``None`` when the profile does not cover the candidate (its
    code never executed during profiling) — the caller decides how to treat
    unprofiled candidates. ``delay_tolerance`` loosens rule #4: an output
    delay must exceed ``slack + tolerance`` to be flagged.

    ``measured_latencies`` enables the extension the paper leaves as
    future work (the *mcf* footnote of §5.1): rule #2 uses each
    constituent's *profiled* average latency (``out_ready − issue``, which
    includes cache misses) instead of the optimistic nominal latency.
    """
    pcs = list(candidate.pcs)
    if not profile.covers(pcs):
        return None
    entries = [profile.get(pc) for pc in pcs]
    size = candidate.size

    latencies = list(candidate.latencies)
    if measured_latencies:
        for k, entry in enumerate(entries):
            if entry.out_ready is not None:
                observed = entry.out_ready - entry.rel_issue
                if observed > latencies[k]:
                    latencies[k] = observed

    issue_singleton = [entry.rel_issue for entry in entries]

    # Rule #1: the handle waits for every external input.
    ready_values: List[float] = []
    serializing_ready: List[float] = []
    for _, consumer_ix, position in candidate.ext_inputs:
        ready = entries[consumer_ix].src_ready[position]
        value = _NEG_INF if ready is None else ready
        ready_values.append(value)
        if consumer_ix > 0:
            serializing_ready.append(value)
    issue_0 = issue_singleton[0]
    if ready_values:
        issue_0 = max(issue_0, max(ready_values))

    # Rule #2: strictly serial internal execution.
    issue_mg = [0.0] * size
    issue_mg[0] = issue_0
    for n in range(1, size):
        issue_mg[n] = issue_mg[n - 1] + latencies[n - 1]

    # Rule #3: per-constituent induced delay.
    delays = [issue_mg[n] - issue_singleton[n] for n in range(size)]

    # Rule #4: outputs are the register output plus any store or branch.
    output_indices: List[int] = []
    if candidate.output is not None:
        output_indices.append(candidate.output[1])
    for offset, inst in enumerate(candidate.instructions()):
        if inst.is_store or inst.is_branch:
            if offset not in output_indices:
                output_indices.append(offset)
    degrades = False
    for index in output_indices:
        slack = entries[index].slack
        if delays[index] > slack + delay_tolerance:
            degrades = True
            break

    degrades_delay_only = any(delays[i] > delay_tolerance
                              for i in output_indices)

    # SIAL heuristic (Serial Input Arrives Last): reject when the last
    # arriving mg-input feeds a non-first constituent and actually arrives
    # after the first constituent could have issued.
    degrades_sial = False
    if serializing_ready and ready_values:
        last = max(ready_values)
        if last > issue_singleton[0] and max(serializing_ready) >= last:
            degrades_sial = True

    return DelayAssessment(candidate, issue_singleton, issue_mg, delays,
                           output_indices, degrades, degrades_delay_only,
                           degrades_sial, True)


# ---------------------------------------------------------------------
# Native whole-set scoring
# ---------------------------------------------------------------------

class _ProfileColumns:
    """Flat scoring columns of one :class:`SlackProfile` (native input)."""

    __slots__ = ("n_static", "present", "rel_issue", "src_ready", "slack",
                 "out_ready", "has_out")


# Id-keyed, bounded (profiles are immutable once built; keeping the
# columns off the SlackProfile object keeps pickled artifacts identical
# on both paths).
_PCOL_CACHE: dict = {}
_PCOL_BOUND = 8


def _profile_columns(profile: SlackProfile,
                     n_static: int) -> Optional[_ProfileColumns]:
    key = id(profile)
    hit = _PCOL_CACHE.get(key)
    if hit is not None and hit[0] is profile and hit[1].n_static == n_static:
        return hit[1]
    cols = _ProfileColumns()
    cols.n_static = n_static
    cols.present = array("b", bytes(n_static))
    cols.rel_issue = array("d", bytes(8 * n_static))
    cols.src_ready = array("d", [_NEG_INF]) * (n_static * _PLAN_MAX_SRC)
    cols.slack = array("d", bytes(8 * n_static))
    cols.out_ready = array("d", bytes(8 * n_static))
    cols.has_out = array("b", bytes(n_static))
    for pc, entry in profile.entries.items():
        if pc >= n_static or len(entry.src_ready) > _PLAN_MAX_SRC:
            return None
        cols.present[pc] = 1
        cols.rel_issue[pc] = entry.rel_issue
        cols.slack[pc] = entry.slack
        if entry.out_ready is not None:
            cols.has_out[pc] = 1
            cols.out_ready[pc] = entry.out_ready
        base = pc * _PLAN_MAX_SRC
        for position, ready in enumerate(entry.src_ready):
            if ready is not None:
                cols.src_ready[base + position] = ready
    if len(_PCOL_CACHE) >= _PCOL_BOUND:
        _PCOL_CACHE.clear()
    _PCOL_CACHE[key] = (profile, cols)
    return cols


def assess_batch(candidates, profile: SlackProfile,
                 delay_tolerance: float = 0.0,
                 measured_latencies: bool = False) -> Optional[array]:
    """Rules #1–#4 verdicts for a whole candidate set in one C call.

    Returns an ``array('q')`` of per-candidate bitmasks
    (:data:`VERDICT_PROFILED` | :data:`VERDICT_DEGRADES` |
    :data:`VERDICT_DELAY_ONLY` | :data:`VERDICT_SIAL`; ``0`` means the
    profile does not cover the candidate, matching :func:`assess`
    returning None), or None when the kernel is unavailable or the set
    does not fit the packed format — callers then fall back to
    per-candidate :func:`assess`, which computes the identical booleans.
    """
    n = len(candidates)
    if n == 0 or not _ckern.available():
        return None
    cols = candidate_columns(candidates)
    if cols is None:
        return None
    n_cand, c_start, c_end, c_ext, c_out, _c_ser = cols
    program = getattr(candidates, "program", None)
    if program is None:
        program = candidates[0].program
    static = _static_columns(program)
    n_static = len(static.opclass)
    pcols = _profile_columns(profile, n_static)
    if pcols is None:
        return None
    return _ckern.plan_score(
        n_cand, c_start, c_end, c_ext, c_out,
        static.opclass, static.latency,
        pcols.present, pcols.rel_issue, pcols.src_ready, pcols.slack,
        pcols.out_ready, pcols.has_out,
        measured_latencies, delay_tolerance)
