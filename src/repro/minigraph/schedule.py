"""Mini-graph-aware instruction scheduling (in-block code motion).

The candidate enumerator works on *contiguous* instruction windows; the
original mini-graphs work allowed dependence-preserving code motion within
a basic block to bring profitable groups together. This pass restores that
capability: each basic block is list-scheduled so that single-consumer
dataflow chains become adjacent, which both exposes more candidates and
biases them toward the serialization-safe chain shape (all external inputs
into the first constituent).

Legality is purely structural:

* register dataflow (RAW/WAR/WAW) is preserved;
* stores are barriers for all memory operations (no alias analysis);
* loads may reorder freely between stores;
* a block-terminating control transfer stays last.

``reschedule`` rewrites a whole program; block boundaries and branch
targets are unchanged (only the interior order of each block moves), so
labels and the CFG survive untouched. Use
:func:`verify_equivalence` to check architectural equivalence of the
rewritten binary on an input.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..isa import opcodes as oc
from ..isa.instruction import Instruction
from ..isa.interp import execute
from ..isa.program import Program


class SchedulingError(RuntimeError):
    """The rewritten program failed its architectural equivalence check."""


def _block_dag(program: Program, start: int, end: int) -> List[Set[int]]:
    """Predecessor sets (by block offset) for instructions ``[start, end)``."""
    size = end - start
    preds: List[Set[int]] = [set() for _ in range(size)]
    last_writer: Dict[int, int] = {}
    readers_since_write: Dict[int, List[int]] = {}
    last_store: Optional[int] = None
    mem_since_store: List[int] = []
    for offset in range(size):
        inst = program.instructions[start + offset]
        # Register dependences.
        for src in inst.srcs:
            if src == 0:
                continue
            if src in last_writer:
                preds[offset].add(last_writer[src])        # RAW
            readers_since_write.setdefault(src, []).append(offset)
        if inst.writes_reg:
            rd = inst.rd
            if rd in last_writer:
                preds[offset].add(last_writer[rd])          # WAW
            for reader in readers_since_write.get(rd, ()):
                if reader != offset:
                    preds[offset].add(reader)               # WAR
            last_writer[rd] = offset
            readers_since_write[rd] = []
        # Memory dependences: stores are barriers.
        if inst.is_store:
            if last_store is not None:
                preds[offset].add(last_store)
            for mem in mem_since_store:
                preds[offset].add(mem)
            last_store = offset
            mem_since_store = []
        elif inst.is_load:
            if last_store is not None:
                preds[offset].add(last_store)
            mem_since_store.append(offset)
        # Control transfers (and halt) are scheduling barriers at the end.
        if inst.is_control or inst.opclass == oc.OC_HALT:
            for other in range(size):
                if other != offset:
                    preds[offset].add(other)
    return preds


def schedule_block(program: Program, start: int, end: int) -> List[int]:
    """A dependence-preserving order (absolute PCs) for one block.

    Greedy list scheduling with a chain-affinity heuristic: after emitting
    an instruction, prefer a ready instruction that consumes its result
    (forming a contiguous dataflow chain); otherwise take the oldest ready
    instruction (stability).
    """
    size = end - start
    if size <= 2:
        return list(range(start, end))
    preds = _block_dag(program, start, end)
    remaining_preds = [set(p) for p in preds]
    succs: List[Set[int]] = [set() for _ in range(size)]
    for offset, pset in enumerate(preds):
        for pred in pset:
            succs[pred].add(offset)

    scheduled: List[int] = []
    emitted: Set[int] = set()
    ready = sorted(offset for offset in range(size)
                   if not remaining_preds[offset])
    while ready:
        choice = None
        if scheduled:
            last = scheduled[-1]
            last_inst = program.instructions[start + last]
            if last_inst.writes_reg:
                rd = last_inst.rd
                for offset in ready:
                    inst = program.instructions[start + offset]
                    if rd in inst.srcs:
                        choice = offset
                        break
        if choice is None:
            choice = ready[0]
        ready.remove(choice)
        scheduled.append(choice)
        emitted.add(choice)
        for succ in sorted(succs[choice]):
            remaining_preds[succ].discard(choice)
            if not remaining_preds[succ] and succ not in emitted \
                    and succ not in ready:
                ready.append(succ)
                ready.sort()
    assert len(scheduled) == size, "scheduling lost instructions"
    return [start + offset for offset in scheduled]


def reschedule(program: Program, verify: bool = False,
               max_insts: int = 2_000_000) -> Program:
    """Apply chain-affinity scheduling to every basic block.

    Returns a new :class:`Program` (the input is untouched). With
    ``verify`` the rewritten binary is architecturally compared against
    the original (final memory image and store sequence) and a
    :class:`SchedulingError` is raised on divergence.
    """
    order: List[int] = []
    for block in program.basic_blocks():
        order.extend(schedule_block(program, block.start, block.end))
    new_instructions = []
    for pc in order:
        inst = program.instructions[pc]
        clone = Instruction(inst.op, inst.rd, inst.srcs, inst.imm,
                            inst.target_label)
        new_instructions.append(clone)
    rewritten = Program(f"{program.name}", new_instructions,
                        data=program.data, labels=dict(program.labels),
                        memory_words=program.memory_words)
    # Branch targets are block starts; block starts did not move, and
    # control transfers stayed last, so immediates remain valid.
    if verify:
        verify_equivalence(program, rewritten, max_insts=max_insts)
    return rewritten


def verify_equivalence(original: Program, rewritten: Program,
                       max_insts: int = 2_000_000) -> None:
    """Architectural equivalence check: same final memory and same store
    sequence (stores are barriers, so their order is an invariant)."""
    trace_a = execute(original, max_insts=max_insts, capture_memory=True)
    trace_b = execute(rewritten, max_insts=max_insts, capture_memory=True)
    if trace_a.final_memory != trace_b.final_memory:
        raise SchedulingError(
            f"{original.name}: rescheduling changed the final memory image")
    stores_a = [r.addr for r in trace_a.records if r.is_store]
    stores_b = [r.addr for r in trace_b.records if r.is_store]
    if stores_a != stores_b:
        raise SchedulingError(
            f"{original.name}: rescheduling changed the store sequence")
    if len(trace_a.records) != len(trace_b.records):
        raise SchedulingError(
            f"{original.name}: rescheduling changed the dynamic length")
