"""Mini-graph processing: candidates, templates, selection, serialization
models, slack profiling, and the outlining transform."""

from .candidates import Candidate, enumerate_candidates
from .delay_model import DelayAssessment, assess
from .dynamic import MiniGraphPolicy, SlackDynamicPolicy
from .schedule import SchedulingError, reschedule, schedule_block, \
    verify_equivalence
from .selection import MiniGraphPlan, empty_plan, select
from .selectors import (
    FixedSetSelector, Selector, SlackDynamicSelector, SlackProfileSelector,
    StructAll, StructBounded, StructNone, make_plan,
)
from .serialization import SerializationClass, classify
from .slack import ProfileEntry, SlackCollector, SlackProfile
from .templates import MGSite, MGTemplate, MiniGraphTable, build_templates
from .transform import MGHandleRecord, TransformedBinary, fold_trace

__all__ = [
    "Candidate",
    "DelayAssessment",
    "FixedSetSelector",
    "MGHandleRecord",
    "MGSite",
    "MGTemplate",
    "MiniGraphPlan",
    "MiniGraphPolicy",
    "MiniGraphTable",
    "ProfileEntry",
    "SchedulingError",
    "Selector",
    "SerializationClass",
    "SlackCollector",
    "SlackDynamicPolicy",
    "SlackDynamicSelector",
    "SlackProfile",
    "SlackProfileSelector",
    "StructAll",
    "StructBounded",
    "StructNone",
    "TransformedBinary",
    "assess",
    "build_templates",
    "classify",
    "empty_plan",
    "enumerate_candidates",
    "fold_trace",
    "make_plan",
    "reschedule",
    "schedule_block",
    "select",
    "verify_equivalence",
]
