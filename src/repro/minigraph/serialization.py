"""Structural serialization classification (§4.1–§4.2 of the paper).

A candidate is *potentially serializing* when it has an external register
input whose first consumer is not the first constituent — the aggregate
then cannot issue until that input arrives, even though in a singleton
execution the first constituent would not have waited for it.

``Struct-Bounded`` refines this with the bounded/unbounded distinction of
§4.2: serialization delay on the register output is *bounded* (by the
mini-graph's own execution latency) when every serializing input is
"upstream" of the output producer, i.e. its consumer's result flows into
the instruction that produces the output. Disconnected mini-graphs and
serializing inputs "downstream" of the output make the delay unbounded.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional, Tuple

from .dataflow import is_connected, reaches


class SerializationClass(Enum):
    """Structural serialization category of a candidate."""

    NONE = "none"            # every external input feeds the first constituent
    BOUNDED = "bounded"      # serializing, but output delay provably short
    UNBOUNDED = "unbounded"  # output delay can grow with input arrival skew


def serializing_inputs(
        ext_inputs: List[Tuple[int, int, int]]) -> List[Tuple[int, int, int]]:
    """The subset of external inputs that can serialize the aggregate."""
    return [entry for entry in ext_inputs if entry[1] > 0]


def classify(size: int,
             ext_inputs: List[Tuple[int, int, int]],
             edges: List[Tuple[int, int]],
             out_producer: Optional[int]) -> SerializationClass:
    """Classify a candidate group structurally.

    Parameters
    ----------
    size:
        Number of constituents.
    ext_inputs:
        ``(reg, first_consumer_offset, operand_position)`` triples.
    edges:
        Internal dataflow edges ``(producer_offset, consumer_offset)``.
    out_producer:
        Offset of the constituent producing the register output, or ``None``
        if the group has no live register output.
    """
    serial = serializing_inputs(ext_inputs)
    if not serial:
        return SerializationClass.NONE
    if out_producer is None:
        # Only the register output's delay is bounded by inspection
        # (§4.2); with no register output there is nothing to bound.
        return SerializationClass.BOUNDED
    if not is_connected(size, edges):
        return SerializationClass.UNBOUNDED
    for _, consumer, _ in serial:
        if not reaches(size, edges, consumer, out_producer):
            return SerializationClass.UNBOUNDED
    return SerializationClass.BOUNDED
