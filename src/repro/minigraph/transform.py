"""Outlining transform: binary rewriting and trace folding.

Implements the encoding of §2 (Figure 2): selected mini-graph bodies are
removed from the program main line and replaced by a one-slot *handle*;
bodies live in the MGT on a mini-graph processor, or out-of-line behind a
pair of jumps on a processor with the mini-graph disabled.

Because the timing model is trace-driven, the transform operates on the
dynamic trace: it assigns post-outlining PCs to every static instruction
(so that fetch-group and I$ behaviour reflect the compacted binary),
allocates per-site outlined locations past the end of the binary (used
when Slack-Dynamic disables a site), and folds each dynamic instance of a
selected site into a single :class:`MGHandleRecord` carrying its
constituents.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..isa.interp import PackedTrace, Trace, TraceRecord
from ..isa.opcodes import OC_BRANCH
from ..isa.program import Program
from .selection import MiniGraphPlan
from .templates import MGSite

_OUTLINE_GAP = 8  # I$ padding between the main line and outlined bodies


class MGHandleRecord:
    """A dynamic mini-graph instance: one slot everywhere but execute."""

    __slots__ = ("pc", "rd", "srcs", "addr", "taken", "next_pc",
                 "site", "template", "constituents")
    kind = 1

    def __init__(self, pc: int, rd: int, srcs: Tuple[int, ...], addr: int,
                 taken: bool, next_pc: int, site: MGSite,
                 constituents: List[TraceRecord]):
        self.pc = pc
        self.rd = rd
        self.srcs = srcs
        self.addr = addr
        self.taken = taken
        self.next_pc = next_pc
        self.site = site
        self.template = site.template
        self.constituents = constituents

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MGHandleRecord pc={self.pc} site={self.site.id} "
                f"n={len(self.constituents)}>")


class TransformedBinary:
    """Static outcome of applying a plan to a program."""

    def __init__(self, program: Program, plan: MiniGraphPlan):
        self.program = program
        self.plan = plan
        self.pc_map: List[int] = [0] * len(program)
        self.new_length = 0
        self._layout()

    def _layout(self) -> None:
        """Assign post-outlining PCs (binary compaction + outlined bodies).

        ``site.handle_pc`` / ``site.outlined_pc`` are reassigned on
        every fold before anything reads them — the contract that lets
        the runner and fuzz paths hoist one site list across the
        per-selector plan loop (and ``MGSite.__getstate__`` normalize
        the scratch pcs away when plans are pickled).
        """
        new_pc = 0
        site_iter = iter(self.plan.sites)
        site = next(site_iter, None)
        pc = 0
        n = len(self.program)
        while pc < n:
            if site is not None and pc == site.start:
                site.handle_pc = new_pc
                for offset in range(site.end - site.start):
                    self.pc_map[pc + offset] = new_pc
                pc = site.end
                new_pc += 1
                site = next(site_iter, None)
            else:
                self.pc_map[pc] = new_pc
                pc += 1
                new_pc += 1
        self.new_length = new_pc
        outlined = new_pc + _OUTLINE_GAP
        for site in self.plan.sites:
            site.outlined_pc = outlined
            # jump-in slot is at the handle site; body + back-jump out of line
            outlined += (site.end - site.start) + 1


def fold_trace(trace: Trace, plan: MiniGraphPlan) -> PackedTrace:
    """Fold a singleton trace into its mini-graph form under ``plan``.

    Returns the record stream for the timing core as a
    :class:`~repro.isa.interp.PackedTrace` (a drop-in sequence of
    records): singleton records carry rewritten PCs; dynamic instances of
    selected sites become :class:`MGHandleRecord` aggregates.
    """
    binary = TransformedBinary(trace.program, plan)
    pc_map = binary.pc_map
    site_at: Dict[int, MGSite] = {site.start: site for site in plan.sites}
    records = trace.records
    out: List = []
    append = out.append
    i = 0
    n = len(records)
    while i < n:
        rec = records[i]
        site = site_at.get(rec.pc)
        if site is None:
            append(TraceRecord(pc_map[rec.pc], rec.op, rec.opclass,
                               rec.latency, rec.rd, rec.srcs, rec.addr,
                               rec.taken,
                               pc_map[rec.next_pc]
                               if rec.next_pc < len(pc_map) else rec.next_pc))
            i += 1
            continue
        size = site.end - site.start
        constituents = records[i:i + size]
        assert len(constituents) == size and \
            constituents[-1].pc == site.end - 1, \
            "trace does not follow the static site layout"
        candidate = site.candidate
        addr = -1
        taken = False
        for constituent in constituents:
            if constituent.addr >= 0:
                addr = constituent.addr
            if constituent.opclass == OC_BRANCH:
                taken = constituent.taken
        last = constituents[-1]
        next_pc = (pc_map[last.next_pc] if last.next_pc < len(pc_map)
                   else last.next_pc)
        append(MGHandleRecord(
            site.handle_pc, candidate.out_reg,
            tuple(reg for reg, _, _ in candidate.ext_inputs),
            addr, taken, next_pc, site, list(constituents)))
        i += size
    return PackedTrace.from_records(out)


def singleton_records(trace: Trace) -> List[TraceRecord]:
    """The untransformed record list (no mini-graphs baseline)."""
    return trace.records

