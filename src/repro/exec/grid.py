"""Experiment grids as deduplicated task DAGs.

A figure regeneration is a set of :class:`Point`\\ s — (benchmark ×
selector × machine) timing runs plus their baselines. Each point expands
into the pipeline chain ``trace → [profile] → candidates → plan →
timing``, but the upstream nodes are shared: every selector on a
benchmark reuses one trace and one candidate enumeration, every
slack selector on the same profiling machine reuses one profile, and the
full-machine baseline every figure normalizes against exists exactly
once. :func:`build_tasks` performs that deduplication by constructing
deterministic task ids from the parameters themselves.

:func:`run_points` executes the DAG with a :class:`~repro.exec.dag.Scheduler`
against the runner's *persistent* store; afterwards the (serial) driver
replays the same calls through the runner and finds every artifact
already present — parallelism without touching the drivers' logic, and
bit-identical results for any ``--jobs`` value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from . import tasks as task_fns
from .dag import ExecReport, Scheduler, Task

Spec = Tuple[Tuple[str, Any], ...]


def parse_jobs(spec) -> Tuple[int, int]:
    """``--jobs`` value → ``(jobs, threads)``.

    ``"4"`` (or ``4``) is the classic process fan-out: ``(4, 0)``.
    ``"threads:8"`` selects batched native dispatch — ``(1, 8)``: the
    scheduler stays serial and in-process, but each wave of ready
    timing nodes becomes one ``repro_run_batch`` call over 8 C threads
    (see :mod:`repro.exec.batch`). Bare ``"threads"`` uses one thread
    per CPU.

    Zero, negative, and malformed values raise :class:`ValueError` with
    a message the CLIs print verbatim as their one-line error.
    """
    def _positive(text: str, what: str) -> int:
        try:
            count = int(text)
        except ValueError:
            raise ValueError(
                f"bad --jobs value {str(spec)!r}: {what} {text!r} is not "
                f"an integer (expected N, threads, or threads:N)") from None
        if count < 1:
            raise ValueError(f"bad --jobs value {str(spec)!r}: "
                             f"{what} must be >= 1")
        return count

    if isinstance(spec, int) and not isinstance(spec, bool):
        if spec < 1:
            raise ValueError(f"bad --jobs value {spec!r}: "
                             "job count must be >= 1")
        return spec, 0
    text = str(spec).strip()
    if text == "threads":
        import os
        return 1, max(1, os.cpu_count() or 1)
    if text.startswith("threads:"):
        return 1, _positive(text.split(":", 1)[1], "thread count")
    return _positive(text, "job count"), 0


def _freeze(spec: Optional[Dict[str, Any]]) -> Spec:
    return tuple(sorted((spec or {}).items(),
                        key=lambda item: item[0]))


def _sel_tag(selector: Dict[str, Any]) -> str:
    """Task-id fragment for a selector spec: readable *and* injective.

    :func:`build_tasks` deduplicates by task id, so two selectors that
    differ in any hyperparameter must map to distinct tags — otherwise
    one of their plan/check/timing nodes is silently dropped. The kind
    (plus variant, where present) keeps ids readable; a short digest of
    the full canonical spec covers every other knob (``unprofiled_ok``,
    the read-port hyperparameters, ``fixed-set`` site lists, ...).
    """
    import hashlib
    import json
    tag = selector["kind"] if "variant" not in selector \
        else f"{selector['kind']}-{selector['variant']}"
    extras = {key: value for key, value in selector.items()
              if key not in ("kind", "variant")}
    if not extras:
        return tag
    canonical = json.dumps(selector, sort_keys=True,
                           separators=(",", ":")).encode()
    return f"{tag}-{hashlib.sha1(canonical).hexdigest()[:8]}"


def _thaw(spec: Spec) -> Dict[str, Any]:
    return {key: value for key, value in spec}


@dataclass(frozen=True)
class Point:
    """One experiment grid point (hashable, JSON-friendly fields only)."""

    kind: str                      # "baseline" | "selector" | "slack-dynamic"
    bench: str
    config: str                    # named machine configuration
    input_name: str = "train"
    selector: Spec = ()            # Selector.spec() items
    profile_config: Optional[str] = None
    profile_input: Optional[str] = None
    global_slack: bool = False
    policy: Spec = ()              # slack-dynamic kwargs items


def point_to_doc(point: Point) -> Dict[str, Any]:
    """JSON document for a :class:`Point` (ledger headers, wire formats)."""
    return {"kind": point.kind, "bench": point.bench, "config": point.config,
            "input": point.input_name,
            "selector": [[key, value] for key, value in point.selector],
            "profile_config": point.profile_config,
            "profile_input": point.profile_input,
            "global_slack": point.global_slack,
            "policy": [[key, value] for key, value in point.policy]}


def point_from_doc(doc: Dict[str, Any]) -> Point:
    """Inverse of :func:`point_to_doc` (exact: same task ids, same keys)."""
    return Point(doc["kind"], doc["bench"], doc["config"],
                 doc.get("input", "train"),
                 tuple((key, value)
                       for key, value in doc.get("selector", [])),
                 doc.get("profile_config"), doc.get("profile_input"),
                 bool(doc.get("global_slack", False)),
                 tuple((key, value) for key, value in doc.get("policy", [])))


def baseline_point(bench: str, config: str,
                   input_name: str = "train") -> Point:
    """A singleton (no mini-graphs) timing run."""
    return Point("baseline", bench, config, input_name)


def selector_point(bench: str, selector, config: str,
                   input_name: str = "train",
                   profile_config: Optional[str] = None,
                   profile_input: Optional[str] = None,
                   global_slack: bool = False) -> Point:
    """``selector`` is a Selector instance, a spec dict, or a frozen spec."""
    if isinstance(selector, tuple):
        spec = selector
    elif isinstance(selector, dict):
        spec = _freeze(selector)
    else:
        spec = _freeze(selector.spec())
    return Point("selector", bench, config, input_name, spec,
                 profile_config, profile_input, global_slack)


def dynamic_point(bench: str, config: str, input_name: str = "train",
                  **policy_kwargs) -> Point:
    """A Slack-Dynamic run (Struct-All pool + run-time policy kwargs)."""
    return Point("slack-dynamic", bench, config, input_name,
                 policy=_freeze(policy_kwargs))


def build_tasks(points: Sequence[Point], runner,
                check: bool = False,
                shm_traces: Optional[Dict[Tuple[str, str], Dict]] = None
                ) -> List[Task]:
    """Expand points into a deduplicated trace→profile→plan→timing DAG.

    With ``check`` every selector and slack-dynamic point also gets a
    validation node (stage ``check``, deduplicated per (program,
    selector, plan parameters)) that replays the plan through the
    lockstep engine and the invariant linter and fails the run on any
    divergence (:func:`repro.exec.tasks.run_check`). Check nodes depend
    only on the plan and trace, so they run concurrently with the timing
    runs they vouch for.

    ``shm_traces`` maps (bench, input) pairs to shared-memory trace
    descriptors published by :func:`run_points`; every spec that reads a
    published trace carries the matching descriptors so workers attach
    the columns zero-copy instead of unpickling the disk artifact.
    """
    base = task_fns.runner_params(runner)
    shm_traces = shm_traces or {}
    table: Dict[str, Task] = {}

    def shm_for(bench: str, *inputs: Optional[str]) -> Dict:
        descriptors = [shm_traces[(bench, name)]
                       for name in dict.fromkeys(inputs)
                       if name is not None and (bench, name) in shm_traces]
        return {"shm_traces": descriptors} if descriptors else {}

    def add(task: Task) -> str:
        table.setdefault(task.id, task)
        return task.id

    def trace_task(bench: str, input_name: str) -> str:
        spec = dict(base, bench=bench, input=input_name,
                    **shm_for(bench, input_name))
        return add(Task(id=f"trace/{bench}/{input_name}",
                        fn=task_fns.run_trace, args=(spec,), stage="trace"))

    def candidates_task(bench: str, input_name: str) -> str:
        spec = dict(base, bench=bench, input=input_name,
                    **shm_for(bench, input_name))
        return add(Task(
            id=f"candidates/{bench}/{input_name}/{runner.max_mg_size}",
            fn=task_fns.run_candidates, args=(spec,),
            deps=(trace_task(bench, input_name),), stage="candidates"))

    def profile_task(bench: str, input_name: str, config: str,
                     global_slack: bool) -> str:
        spec = dict(base, bench=bench, input=input_name, config=config,
                    global_slack=global_slack,
                    **shm_for(bench, input_name))
        return add(Task(
            id=f"profile/{bench}/{input_name}/{config}/{global_slack}",
            fn=task_fns.run_profile, args=(spec,),
            deps=(trace_task(bench, input_name),), stage="profile"))

    def plan_task(point: Point) -> str:
        selector = _thaw(point.selector)
        profile_config = point.profile_config or "reduced"
        profile_input = point.profile_input or point.input_name
        deps = [trace_task(point.bench, point.input_name),
                trace_task(point.bench, profile_input),
                candidates_task(point.bench, point.input_name)]
        if task_fns.selector_from_spec(selector).needs_profile:
            deps.append(profile_task(point.bench, profile_input,
                                     profile_config, point.global_slack))
        spec = dict(base, bench=point.bench, input=point.input_name,
                    selector=selector, profile_config=point.profile_config,
                    profile_input=point.profile_input,
                    global_slack=point.global_slack,
                    **shm_for(point.bench, point.input_name, profile_input))
        return add(Task(
            id=f"plan/{point.bench}/{point.input_name}/{_sel_tag(selector)}"
               f"/{profile_config}/{profile_input}/{point.global_slack}",
            fn=task_fns.run_plan, args=(spec,), deps=tuple(deps),
            stage="plan"))

    def check_task(point: Point) -> str:
        selector = _thaw(point.selector)
        profile_config = point.profile_config or "reduced"
        profile_input = point.profile_input or point.input_name
        spec = dict(base, bench=point.bench, input=point.input_name,
                    selector=selector, profile_config=point.profile_config,
                    profile_input=point.profile_input,
                    global_slack=point.global_slack,
                    **shm_for(point.bench, point.input_name, profile_input))
        return add(Task(
            id=f"check/{point.bench}/{point.input_name}/{_sel_tag(selector)}"
               f"/{profile_config}/{profile_input}/{point.global_slack}",
            fn=task_fns.run_check, args=(spec,),
            deps=(plan_task(point),
                  trace_task(point.bench, point.input_name)),
            stage="check", retries=0))

    for point in points:
        if check and point.kind != "baseline":
            # Slack-Dynamic folds the same Struct-All-pool plan as its
            # static selector point; its run-time policy never alters
            # the folded record stream, so one check covers both.
            check_task(point if point.kind == "selector"
                       else selector_point(point.bench,
                                           {"kind": "slack-dynamic"},
                                           point.config, point.input_name))
        if point.kind == "baseline":
            spec = dict(base, bench=point.bench, input=point.input_name,
                        config=point.config,
                        **shm_for(point.bench, point.input_name))
            add(Task(id=f"baseline/{point.bench}/{point.input_name}"
                        f"/{point.config}",
                     fn=task_fns.run_baseline, args=(spec,),
                     deps=(trace_task(point.bench, point.input_name),),
                     stage="baseline"))
            continue
        if point.kind == "slack-dynamic":
            deps = (plan_task(selector_point(
                        point.bench, {"kind": "slack-dynamic"},
                        point.config, point.input_name)),
                    trace_task(point.bench, point.input_name))
            spec = dict(base, point_kind="slack-dynamic", bench=point.bench,
                        input=point.input_name, config=point.config,
                        policy=_thaw(point.policy),
                        **shm_for(point.bench, point.input_name))
            policy_tag = ",".join(f"{k}={v}" for k, v in point.policy) \
                or "default"
            add(Task(id=f"timing/{point.bench}/{point.input_name}"
                        f"/{point.config}/slack-dynamic/{policy_tag}",
                     fn=task_fns.run_timing, args=(spec,), deps=deps,
                     stage="timing"))
            continue
        # Static selector timing run.
        selector = _thaw(point.selector)
        deps = (plan_task(point),
                trace_task(point.bench, point.input_name))
        spec = dict(base, point_kind="selector", bench=point.bench,
                    input=point.input_name, config=point.config,
                    selector=selector, profile_config=point.profile_config,
                    profile_input=point.profile_input,
                    global_slack=point.global_slack,
                    **shm_for(point.bench, point.input_name,
                              point.profile_input or point.input_name))
        add(Task(id=f"timing/{point.bench}/{point.input_name}"
                    f"/{point.config}/{_sel_tag(selector)}"
                    f"/{point.profile_config}/{point.profile_input}"
                    f"/{point.global_slack}",
                 fn=task_fns.run_timing, args=(spec,), deps=deps,
                 stage="timing"))
    return list(table.values())


def publish_point_traces(runner, points: Sequence[Point],
                         registry) -> Dict[Tuple[str, str], Dict]:
    """Publish every already-materialized trace the points will read.

    Only traces the runner's store can produce *now* (memory layer, or
    one parent-side unpickle from disk) are published; missing traces
    are simply not in the table, and their workers compute/load them
    through the store as before — the silent pickling fallback.
    """
    from .store import MISS
    pairs = {(point.bench, point.input_name) for point in points}
    pairs.update((point.bench, point.profile_input or point.input_name)
                 for point in points if point.kind == "selector")
    table: Dict[Tuple[str, str], Dict] = {}
    for bench, input_name in sorted(pairs):
        params = {"bench": bench, "input": input_name,
                  "max_insts": runner.max_insts}
        trace = runner.store.get(runner.store.key("trace", params), "trace")
        if trace is MISS:
            continue
        descriptor = registry.publish(trace, bench, input_name,
                                      runner.max_insts)
        if descriptor is not None:
            table[(bench, input_name)] = descriptor
    return table


def run_points(runner, points: Sequence[Point], jobs: int,
               retries: int = 1, timeout: Optional[float] = None,
               on_event: Optional[Callable[[Dict], None]] = None,
               raise_on_failure: bool = False,
               check: bool = False,
               ledger=None,
               dispatch=None,
               tasks: Optional[List[Task]] = None,
               threads: int = 0) -> ExecReport:
    """Prewarm the runner's store by executing the point DAG in parallel.

    Requires a persistent store when ``jobs > 1`` — worker processes can
    only hand artifacts back through the shared cache directory. With
    ``check`` the DAG carries a lockstep+lint validation node per
    (program, selector) point; a divergence fails the run (see
    :func:`build_tasks`).

    ``ledger`` (a :class:`repro.dist.ledger.RunLedger`) journals every
    terminal node event so a killed run can be resumed with ``repro
    resume``. ``dispatch`` (a :class:`repro.dist.dispatch.DispatchBackend`)
    replaces the default local process pool — e.g. a socket coordinator
    fanning out to ``repro worker`` fleets. ``tasks`` overrides the DAG
    (the resume path passes the already-pruned graph).

    Functional traces the parent already holds are shipped to workers
    through shared memory (:mod:`repro.exec.shm`) rather than pickled;
    the segments are unlinked before returning, whatever happens to the
    workers. Remote dispatch skips shm publishing — a worker on another
    host cannot attach this process's segments — and rehydrates traces
    through the shared store instead.

    ``threads`` (from ``--jobs threads:N``, see :func:`parse_jobs`)
    selects batched native dispatch instead of process fan-out: the
    whole run stays in this process (no persistent store, no shm, no
    pickling) and each scheduler wave of ready timing nodes becomes one
    ``repro_run_batch`` call over N C threads.
    """
    if threads > 0:
        jobs = 1
    if jobs > 1 and not runner.store.persistent:
        raise ValueError(
            "parallel execution needs a persistent store: construct the "
            "Runner with ArtifactStore(cache_dir) or use --cache-dir")
    if dispatch is not None and not runner.store.persistent:
        raise ValueError("remote dispatch needs a persistent store")
    registry = None
    shm_traces: Dict[Tuple[str, str], Dict] = {}
    if jobs > 1 and dispatch is None:
        from .shm import ShmRegistry
        registry = ShmRegistry()
        shm_traces = publish_point_traces(runner, points, registry)
    if ledger is not None:
        on_event = ledger.sink(on_event)
    try:
        scheduler = Scheduler(jobs=jobs, retries=retries, timeout=timeout,
                              on_event=on_event, dispatch=dispatch,
                              threads=threads)
        if tasks is None:
            tasks = build_tasks(points, runner, check=check,
                                shm_traces=shm_traces)
        report = scheduler.run(tasks, raise_on_failure=raise_on_failure)
        if ledger is not None:
            ledger.complete(len(report.results), len(report.failures))
        return report
    finally:
        if registry is not None:
            registry.release_all()
