"""Parallel experiment engine: artifact store + DAG scheduler.

``store`` and ``dag`` are dependency-free with respect to the harness and
are imported eagerly; ``tasks`` and ``grid`` sit *above* the harness
(they build :class:`~repro.harness.runner.Runner` instances inside worker
processes) and are therefore only imported on demand to keep the import
graph acyclic.
"""

from .dag import ExecReport, ProgressPrinter, Scheduler, Task, TaskError
from .store import MISS, ArtifactStore, StoreStats, code_version, \
    resolve_cache_dir

__all__ = [
    "ArtifactStore", "ExecReport", "MISS", "ProgressPrinter", "Scheduler",
    "StoreStats", "Task", "TaskError", "code_version", "resolve_cache_dir",
]


def __getattr__(name):
    if name in ("tasks", "grid"):
        import importlib
        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
