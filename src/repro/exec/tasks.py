"""Picklable task payloads executed inside scheduler worker processes.

Every function here takes one plain-dict ``spec`` (JSON-ish: strings,
numbers, bools, lists) and returns a *small* summary dict; the real
artifact lands in the on-disk :class:`~repro.exec.store.ArtifactStore`
shared between the parent and all workers, which is how downstream tasks
(and the parent's final reporting pass) pick it up without shipping
multi-megabyte traces over the result pipe.

Specs carry the runner parameters (``budget``, ``max_mg_size``,
``warm_caches``, ``max_insts``, ``cache_dir``); each worker process keeps
one :class:`~repro.harness.runner.Runner` per distinct parameter set so
that repeated tasks in the same worker also share the in-memory layer.
Specs may additionally carry ``shm_traces`` descriptors naming
shared-memory segments the parent published (:mod:`repro.exec.shm`);
those traces are attached zero-copy instead of unpickled from disk.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .store import ArtifactStore

# Per-process caches (workers are forked/fresh processes; the parent's
# copies are only used by the serial degradation path).
_RUNNERS: Dict[Tuple, Any] = {}
_SITES: Dict[Tuple, list] = {}


def runner_params(runner) -> Dict[str, Any]:
    """The spec fragment that reconstructs ``runner`` in a worker."""
    return {
        "budget": runner.budget,
        "max_mg_size": runner.max_mg_size,
        "warm_caches": runner.warm_caches,
        "max_insts": runner.max_insts,
        "cache_dir": str(runner.store.root) if runner.store.persistent
        else None,
        "store_backend": runner.store.backend_name
        if runner.store.persistent else None,
    }


def _runner(spec: Dict[str, Any]):
    from ..harness.runner import Runner
    key = (spec["budget"], spec["max_mg_size"], spec["warm_caches"],
           spec["max_insts"], spec["cache_dir"],
           spec.get("store_backend"))
    if key not in _RUNNERS:
        _RUNNERS[key] = Runner(
            budget=spec["budget"], max_mg_size=spec["max_mg_size"],
            warm_caches=spec["warm_caches"], max_insts=spec["max_insts"],
            store=ArtifactStore(spec["cache_dir"],
                                backend=spec.get("store_backend")))
    runner = _RUNNERS[key]
    _seed_shared_traces(runner, spec)
    return runner


def _seed_shared_traces(runner, spec: Dict[str, Any]) -> None:
    """Attach any shared-memory trace segments named in the spec.

    The parent publishes functional traces it already holds as
    ``multiprocessing.shared_memory`` segments (see
    :mod:`repro.exec.shm`); specs carry the descriptors under
    ``shm_traces``. Attaching maps the packed columns zero-copy and
    seeds the rehydrated trace into this runner's *memory* layer so the
    pipeline's ``runner.trace(...)`` calls hit without touching the
    pickled disk artifact. Any attach failure (segment already
    released, no shared memory here) silently falls back to the store.
    """
    descriptors = spec.get("shm_traces")
    if not descriptors:
        return
    from .shm import attach_trace
    for descriptor in descriptors:
        params = {"bench": descriptor["bench"],
                  "input": descriptor["input"],
                  "max_insts": descriptor["max_insts"]}
        key = runner.store.key("trace", params)
        if key in runner.store._memory:
            continue
        trace = attach_trace(descriptor)
        if trace is not None:
            runner.store.seed(key, trace)


def _config(name: str):
    from ..pipeline.config import config_by_name
    return config_by_name(name)


def selector_from_spec(spec: Dict[str, Any]):
    """Inverse of :meth:`repro.minigraph.selectors.Selector.spec`.

    Delegates to the family registry in
    :mod:`repro.minigraph.selectors`, so any registered family — paper
    selectors and searchable ones alike — round-trips across worker
    processes.
    """
    from ..minigraph import selectors
    return selectors.selector_from_spec(spec)


# -- result summaries ----------------------------------------------------------
#
# The small dicts tasks return over the result pipe. Shared with the
# batched native dispatcher (:mod:`repro.exec.batch`), which publishes
# artifacts directly and must hand the scheduler summaries that are
# indistinguishable from a task function's.

def baseline_summary(stats) -> Dict[str, Any]:
    """Summary shape of :func:`run_baseline`."""
    return {"ipc": stats.ipc}


def profile_summary(profile) -> Dict[str, Any]:
    """Summary shape of :func:`run_profile`."""
    return {"entries": len(profile)}


def timing_summary(run) -> Dict[str, Any]:
    """Summary shape of :func:`run_timing` for selector/dynamic points."""
    return {"ipc": run.ipc, "coverage": run.coverage}


def timing_baseline_summary(stats) -> Dict[str, Any]:
    """Summary shape of :func:`run_timing` for ``baseline`` grid points."""
    return {"ipc": stats.ipc, "coverage": 0.0}


# -- pipeline-stage tasks ------------------------------------------------------

def run_trace(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Materialize the functional trace artifact for one benchmark."""
    trace = _runner(spec).trace(spec["bench"], spec["input"])
    return {"records": len(trace.records)}


def run_candidates(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Materialize the candidate enumeration artifact."""
    candidates = _runner(spec).candidates(spec["bench"], spec["input"])
    return {"candidates": len(candidates)}


def run_baseline(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Singleton timing run on the named machine configuration."""
    stats = _runner(spec).baseline(spec["bench"], _config(spec["config"]),
                                   spec["input"])
    return baseline_summary(stats)


def run_profile(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Slack-profiling run (local or global slack)."""
    profile = _runner(spec).slack_profile(
        spec["bench"], _config(spec["config"]), spec["input"],
        global_slack=spec.get("global_slack", False))
    return profile_summary(profile)


def run_plan(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Selection plan for one (benchmark, selector) pair."""
    runner = _runner(spec)
    plan = runner.plan(
        spec["bench"], selector_from_spec(spec["selector"]),
        input_name=spec["input"],
        profile_config=_config(spec["profile_config"])
        if spec.get("profile_config") else None,
        profile_input=spec.get("profile_input"),
        global_slack=spec.get("global_slack", False))
    return {"templates": plan.n_templates}


def run_timing(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Timing run for one experiment grid point."""
    runner = _runner(spec)
    if spec["point_kind"] == "slack-dynamic":
        run = runner.run_slack_dynamic(
            spec["bench"], _config(spec["config"]),
            input_name=spec["input"],
            **dict(spec.get("policy") or {}))
    elif spec["point_kind"] == "baseline":
        stats = runner.baseline(spec["bench"], _config(spec["config"]),
                                spec["input"])
        return timing_baseline_summary(stats)
    else:
        run = runner.run_selector(
            spec["bench"], selector_from_spec(spec["selector"]),
            _config(spec["config"]), input_name=spec["input"],
            profile_config=_config(spec["profile_config"])
            if spec.get("profile_config") else None,
            profile_input=spec.get("profile_input"),
            global_slack=spec.get("global_slack", False))
    return timing_summary(run)


class CheckFailed(RuntimeError):
    """A validation task found a divergence or an illegal plan.

    Deterministic by construction — check tasks are scheduled with
    ``retries=0``, since re-running the same comparison cannot succeed.
    """


def run_check(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Validation node for one (program, selector) grid point.

    Replays the already-materialized plan and trace through the
    differential lockstep engine and the plan invariant linter
    (:mod:`repro.check`); raises :class:`CheckFailed` on the first
    divergence or lint issue, which fails the experiment run.
    """
    from ..check.lint import lint_plan
    from ..check.lockstep import lockstep_check
    runner = _runner(spec)
    selector = selector_from_spec(spec["selector"])
    plan = runner.plan(
        spec["bench"], selector, input_name=spec["input"],
        profile_config=_config(spec["profile_config"])
        if spec.get("profile_config") else None,
        profile_input=spec.get("profile_input"),
        global_slack=spec.get("global_slack", False))
    trace = runner.trace(spec["bench"], spec["input"])
    report = lockstep_check(trace.program, plan, trace=trace,
                            selector=selector.name,
                            max_insts=spec["max_insts"])
    if report.divergence is not None:
        raise CheckFailed(f"lockstep divergence: {report.render()}")
    issues = lint_plan(trace.program, plan,
                       max_size=spec["max_mg_size"],
                       budget=spec["budget"])
    if issues:
        rendered = "; ".join(issue.render() for issue in issues[:5])
        raise CheckFailed(f"plan invariant violations: {rendered}")
    return {"records": report.records, "handles": report.handles,
            "sites": len(plan.sites)}


# -- limit-study tasks ---------------------------------------------------------

def _limit_sites(runner, bench: str, input_name: str, count: int):
    from ..analysis.limit_study import top_nonoverlapping_sites
    key = (id(runner), bench, input_name, count)
    if key not in _SITES:
        _SITES[key] = top_nonoverlapping_sites(runner, bench, input_name,
                                               count)
    return _SITES[key]


def run_subset(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Evaluate one limit-study subset mask (Figure 8 scatter point).

    Memoized through the store under a ``subset`` artifact (the full
    parameter set, via :meth:`Runner.subset_params`) — which is what
    makes a killed limit study resumable: completed subset points are
    durable, so ``repro resume`` schedules only the missing masks.
    """
    from ..analysis.limit_study import evaluate_subset_cached
    runner = _runner(spec)
    sites = _limit_sites(runner, spec["bench"], spec["input"],
                         spec["n_candidates"])
    point = evaluate_subset_cached(runner, spec["bench"], spec["input"],
                                   _config(spec["config"]),
                                   spec["n_candidates"], spec["mask"],
                                   spec["baseline_ipc"], sites=sites)
    return {"mask": point.mask, "coverage": point.coverage,
            "relative_ipc": point.relative_ipc}
