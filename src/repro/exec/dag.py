"""Dependency-graph scheduler with process fan-out and fault tolerance.

An experiment grid is a DAG of :class:`Task` nodes — trace → profile →
candidates → plan → timing run per (benchmark × selector × machine)
point, with upstream nodes shared between points. The :class:`Scheduler`
topologically orders the graph and either runs it serially in-process
(``jobs=1``, also the deterministic reference path) or fans ready tasks
out over a ``ProcessPoolExecutor``.

Task functions must be module-level (picklable) and communicate bulk
results through the shared on-disk :class:`~repro.exec.store.ArtifactStore`
rather than their return values; returns should be small summaries. This
keeps inter-process traffic negligible and makes re-execution idempotent,
which is what the fault-tolerance layer leans on:

* a task raising an exception is retried up to ``retries`` times with
  linear backoff;
* a worker process dying (``BrokenProcessPool``) degrades the run to
  serial in-process execution of everything still pending — slower, but
  the run completes;
* a task exceeding its ``timeout`` is failed without retry (a stuck
  simulation stays stuck), its pool is torn down, and the remainder of
  the graph likewise degrades to serial;
* a failed task poisons its transitive dependents (``skipped``), but
  independent subgraphs still complete.

Progress is surfaced as a stream of event dicts via ``on_event`` —
``{"kind": "done", "task": ..., "stage": ..., "queued": ..., ...}`` —
which the CLI renders, and as an :class:`ExecReport` with per-stage wall
times at the end.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from repro.dist.dispatch import (DispatchBackend, LocalPoolBackend,
                                 WorkerLost, _invoke)


@dataclass
class Task:
    """One schedulable unit: a picklable callable plus dependency edges."""

    id: str
    fn: Callable[..., Any]
    args: Tuple = ()
    deps: Tuple[str, ...] = ()
    stage: str = "task"
    retries: Optional[int] = None       # None → scheduler default
    timeout: Optional[float] = None     # None → scheduler default


class TaskError(RuntimeError):
    """Raised by :meth:`Scheduler.run` when tasks fail terminally."""

    def __init__(self, failures: Dict[str, str]):
        self.failures = dict(failures)
        first = next(iter(self.failures.items()))
        extra = len(self.failures) - 1
        suffix = f" (+{extra} more)" if extra else ""
        super().__init__(f"task {first[0]!r} failed: {first[1]}{suffix}")


@dataclass
class ExecReport:
    """Outcome of one scheduler run."""

    results: Dict[str, Any] = field(default_factory=dict)
    failures: Dict[str, str] = field(default_factory=dict)
    stage_wall: Dict[str, float] = field(default_factory=dict)
    stage_tasks: Dict[str, int] = field(default_factory=dict)
    elapsed: float = 0.0
    degraded: bool = False
    retries: int = 0

    def render(self) -> str:
        stages = ", ".join(
            f"{stage} {self.stage_tasks[stage]}x/{wall:.1f}s"
            for stage, wall in sorted(self.stage_wall.items()))
        line = (f"[exec] {len(self.results)} tasks in {self.elapsed:.1f}s"
                f" ({stages})")
        if self.retries:
            line += f", {self.retries} retries"
        if self.degraded:
            line += ", degraded to serial"
        if self.failures:
            line += f", {len(self.failures)} FAILED"
        return line


class ProgressPrinter:
    """Renders scheduler events as a throttled one-line-per-tick stream."""

    def __init__(self, stream=None, min_interval: float = 0.5):
        import sys
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._last = 0.0

    def __call__(self, event: Dict[str, Any]) -> None:
        kind = event["kind"]
        now = time.monotonic()
        urgent = kind in ("failed", "degraded", "retry")
        finished = event.get("done", 0) + event.get("failed", 0) \
            == event.get("total", -1)
        if not urgent and not finished \
                and now - self._last < self.min_interval:
            return
        self._last = now
        if kind == "degraded":
            line = "[exec] worker pool lost; continuing serially"
        else:
            line = (f"[exec] {event['done']}/{event['total']} done, "
                    f"{event['running']} running, "
                    f"{event['queued']} queued")
            if event["failed"]:
                line += f", {event['failed']} failed"
            if urgent:
                line += f"  ({kind}: {event['task']})"
            elif event.get("task"):
                line += f"  ({event['stage']}: {event['task']})"
        print(line, file=self.stream)


class Scheduler:
    """Runs a task DAG serially or across a dispatch backend."""

    def __init__(self, jobs: int = 1, retries: int = 1,
                 backoff: float = 0.1, timeout: Optional[float] = None,
                 on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
                 pool: Optional[ProcessPoolExecutor] = None,
                 dispatch: Optional[DispatchBackend] = None,
                 threads: int = 0):
        self.jobs = max(1, int(jobs))
        self.retries = retries
        self.backoff = backoff
        self.timeout = timeout
        self.on_event = on_event
        #: Batched native dispatch (``--jobs threads:N``). When set (and
        #: ``jobs == 1``), each wave of ready timing nodes is packed into
        #: one ``repro_run_batch`` call that fans the points over N C
        #: threads — in-process, so no persistent store or pickling is
        #: needed, and results are bit-identical to serial execution
        #: (see :mod:`repro.exec.batch`). Non-batchable nodes and any
        #: point the kernel cannot finish run through the ordinary
        #: serial path with the same retry policy.
        self.threads = max(0, int(threads))
        #: Optional externally-owned process pool. When set, parallel
        #: runs submit into it instead of spawning a private pool —
        #: ``jobs`` still caps *this* scheduler's in-flight tasks, so
        #: several schedulers (e.g. server jobs) can share one pool.
        #: The scheduler never shuts an external pool down; on timeout
        #: it cannot terminate the pool's workers either, so runaway
        #: tasks are abandoned rather than killed.
        self.pool = pool
        #: Optional :class:`~repro.dist.dispatch.DispatchBackend`.
        #: ``None`` (the default) builds a fresh
        #: :class:`~repro.dist.dispatch.LocalPoolBackend` per run —
        #: today's process-pool semantics exactly. A socket backend
        #: (``repro.dist.remote``) fans the same graph out to ``repro
        #: worker`` processes instead; every fault-tolerance path
        #: (retry, degrade-to-serial on :class:`WorkerLost`, deadline
        #: sweep) is backend-agnostic.
        self.dispatch = dispatch

    # -- graph preparation -----------------------------------------------------

    @staticmethod
    def _topo_order(tasks: Dict[str, Task]) -> List[str]:
        """Kahn's algorithm; deterministic (insertion-ordered) and
        cycle-detecting."""
        dependents: Dict[str, List[str]] = {tid: [] for tid in tasks}
        missing_deps: Dict[str, int] = {}
        for task in tasks.values():
            for dep in task.deps:
                if dep not in tasks:
                    raise ValueError(
                        f"task {task.id!r} depends on unknown {dep!r}")
                dependents[dep].append(task.id)
            missing_deps[task.id] = len(task.deps)
        ready = [tid for tid, n in missing_deps.items() if n == 0]
        order: List[str] = []
        while ready:
            tid = ready.pop(0)
            order.append(tid)
            for successor in dependents[tid]:
                missing_deps[successor] -= 1
                if missing_deps[successor] == 0:
                    ready.append(successor)
        if len(order) != len(tasks):
            cyclic = sorted(set(tasks) - set(order))
            raise ValueError(f"dependency cycle involving {cyclic}")
        return order

    # -- events ----------------------------------------------------------------

    def _emit(self, kind: str, task: Optional[Task], state: Dict) -> None:
        if self.on_event is None:
            return
        event = {
            "kind": kind,
            "task": task.id if task else None,
            "stage": task.stage if task else None,
        }
        event.update(state)
        self.on_event(event)

    # -- execution -------------------------------------------------------------

    def run(self, tasks: Sequence[Task],
            raise_on_failure: bool = True) -> ExecReport:
        """Execute the graph; returns task-id → result."""
        table: Dict[str, Task] = {}
        for task in tasks:
            if task.id in table:
                raise ValueError(f"duplicate task id {task.id!r}")
            table[task.id] = task
        order = self._topo_order(table)

        report = ExecReport()
        start = time.perf_counter()
        if self.jobs == 1 and self.threads:
            self._run_batched(table, order, report)
        elif self.jobs == 1:
            self._run_serial(table, order, report)
        else:
            self._run_parallel(table, order, report)
        report.elapsed = time.perf_counter() - start
        if report.failures and raise_on_failure:
            raise TaskError(report.failures)
        return report

    def _state(self, table: Dict[str, Task], report: ExecReport,
               running: int = 0) -> Dict[str, Any]:
        done = len(report.results)
        failed = len(report.failures)
        return {"done": done, "failed": failed, "running": running,
                "queued": len(table) - done - failed - running,
                "total": len(table)}

    def _record(self, task: Task, result: Any, duration: float,
                report: ExecReport) -> None:
        report.results[task.id] = result
        report.stage_wall[task.stage] = \
            report.stage_wall.get(task.stage, 0.0) + duration
        report.stage_tasks[task.stage] = \
            report.stage_tasks.get(task.stage, 0) + 1

    def _deps_ok(self, task: Task, report: ExecReport) -> bool:
        return all(dep in report.results for dep in task.deps)

    def _skip_for_deps(self, task: Task, report: ExecReport,
                       table: Dict[str, Task]) -> None:
        bad = [dep for dep in task.deps if dep in report.failures]
        report.failures[task.id] = f"skipped: dependency {bad[0]!r} failed"
        self._emit("skipped", task, self._state(table, report))

    def _run_one_serial(self, task: Task, table: Dict[str, Task],
                        report: ExecReport) -> None:
        """In-process execution with the retry policy (no preemption, so
        per-task timeouts are not enforceable here)."""
        retries = self.retries if task.retries is None else task.retries
        for attempt in range(retries + 1):
            try:
                result, duration = _invoke(task.fn, task.args)
            except Exception as error:  # noqa: BLE001 - task boundary
                if attempt < retries:
                    report.retries += 1
                    self._emit("retry", task, self._state(table, report))
                    time.sleep(self.backoff * (attempt + 1))
                    continue
                report.failures[task.id] = f"{type(error).__name__}: {error}"
                self._emit("failed", task, self._state(table, report))
                return
            self._record(task, result, duration, report)
            self._emit("done", task, self._state(table, report))
            return

    def _run_serial(self, table: Dict[str, Task], order: List[str],
                    report: ExecReport,
                    only: Optional[Iterable[str]] = None) -> None:
        pending = set(order if only is None else only)
        for tid in order:
            if tid not in pending or tid in report.results \
                    or tid in report.failures:
                continue
            task = table[tid]
            if not self._deps_ok(task, report):
                self._skip_for_deps(task, report, table)
                continue
            self._run_one_serial(task, table, report)

    def _run_batched(self, table: Dict[str, Task], order: List[str],
                     report: ExecReport) -> None:
        """Wave-at-a-time execution with one native dispatch per wave.

        Each pass collects every ready task; the batchable ones (timing
        runs on the compiled kernel) go through a single
        ``repro_run_batch`` call over ``self.threads`` C threads, the
        rest — and any point the kernel could not finish — run through
        :meth:`_run_one_serial` so failures keep the exact serial retry
        and error-reporting behavior.
        """
        from .batch import is_batchable, run_batch_wave
        pending: List[str] = list(order)
        while pending:
            ready: List[str] = []
            blocked: List[str] = []
            for tid in pending:
                task = table[tid]
                if any(dep in report.failures for dep in task.deps):
                    self._skip_for_deps(task, report, table)
                elif self._deps_ok(task, report):
                    ready.append(tid)
                else:
                    blocked.append(tid)
            if not ready:
                if len(blocked) == len(pending):
                    # No skips, no ready work: unreachable for an acyclic
                    # graph, but never spin — finish serially.
                    self._run_serial(table, order, report, only=blocked)
                    return
                pending = blocked
                continue
            wave = [table[tid] for tid in ready if is_batchable(table[tid])]
            done = run_batch_wave(wave, self.threads) if len(wave) > 1 \
                else {}
            for tid in ready:
                task = table[tid]
                if tid in done:
                    result, duration = done[tid]
                    self._record(task, result, duration, report)
                    self._emit("done", task, self._state(table, report))
                else:
                    self._run_one_serial(task, table, report)
            pending = blocked

    def _run_parallel(self, table: Dict[str, Task], order: List[str],
                      report: ExecReport) -> None:
        dispatch = self.dispatch if self.dispatch is not None \
            else LocalPoolBackend(jobs=self.jobs, pool=self.pool)
        dispatch.open()
        # handle → (task, submit time, attempt); submissions are throttled
        # to backend capacity so "submitted" ≈ "started" and deadlines are
        # fair.
        in_flight: Dict[Any, Tuple[Task, float, int]] = {}
        attempts: Dict[str, int] = {}
        pending: List[str] = list(order)
        degrade = False

        def submit(task: Task) -> None:
            handle = dispatch.submit(task)
            in_flight[handle] = (task, time.monotonic(), attempts.get(task.id, 0))
            self._emit("submit", task, self._state(table, report,
                                                   running=len(in_flight)))

        try:
            while (pending or in_flight) and not degrade:
                # Fill free capacity with ready tasks, in topological
                # order. Capacity is re-polled each pass: elastic
                # backends grow/shrink as workers join or die.
                capacity = max(1, dispatch.capacity())
                still_pending: List[str] = []
                for tid in pending:
                    task = table[tid]
                    if len(in_flight) >= capacity:
                        still_pending.append(tid)
                    elif any(dep in report.failures for dep in task.deps):
                        self._skip_for_deps(task, report, table)
                    elif self._deps_ok(task, report):
                        submit(task)
                    else:
                        still_pending.append(tid)
                pending = still_pending
                if not in_flight:
                    if pending:  # every remaining task is blocked on failures
                        continue
                    break

                completed = dispatch.wait(list(in_flight), timeout=0.05)
                for handle in completed:
                    task, _submitted, attempt = in_flight.pop(handle)
                    try:
                        result, duration = dispatch.result(handle)
                    except WorkerLost:
                        # The executor died underneath the task (dead
                        # worker process, torn-down pool, empty worker
                        # fleet). It is unusable; finish serially.
                        attempts[task.id] = attempt  # retried serially below
                        pending.insert(0, task.id)
                        degrade = True
                        break
                    except Exception as error:  # noqa: BLE001 - task boundary
                        retries = self.retries if task.retries is None \
                            else task.retries
                        if attempt < retries:
                            attempts[task.id] = attempt + 1
                            report.retries += 1
                            self._emit("retry", task,
                                       self._state(table, report,
                                                   running=len(in_flight)))
                            submit(table[task.id])
                        else:
                            report.failures[task.id] = \
                                f"{type(error).__name__}: {error}"
                            self._emit("failed", task,
                                       self._state(table, report,
                                                   running=len(in_flight)))
                        continue
                    self._record(task, result, duration, report)
                    self._emit("done", task,
                               self._state(table, report,
                                           running=len(in_flight)))

                # Deadline sweep: a run-away task cannot be killed without
                # killing its worker, so fail it and degrade.
                if not degrade:
                    now = time.monotonic()
                    timed_out = False
                    for handle, (task, submitted, _a) in list(in_flight.items()):
                        limit = self.timeout if task.timeout is None \
                            else task.timeout
                        if limit is not None and now - submitted > limit \
                                and not dispatch.cancel(handle):
                            in_flight.pop(handle)
                            report.failures[task.id] = \
                                f"timeout after {limit:.1f}s"
                            self._emit("failed", task,
                                       self._state(table, report,
                                                   running=len(in_flight)))
                            degrade = timed_out = True
                    if timed_out:
                        dispatch.handle_timeout()
        finally:
            dispatch.close(list(in_flight))

        if degrade or pending or in_flight:
            # Anything still unfinished (including tasks whose futures were
            # cancelled above) is re-run in-process.
            report.degraded = True
            self._emit("degraded", None, self._state(table, report))
            leftovers = [tid for tid in order
                         if tid not in report.results
                         and tid not in report.failures]
            self._run_serial(table, order, report, only=leftovers)
