"""Persistent content-addressed artifact store.

Every expensive intermediate of the experiment pipeline — functional
traces, slack profiles, candidate enumerations, selection plans, timing
runs — is an *artifact*: a pickled Python object addressed by the SHA-256
of its complete parameter set (benchmark, input, machine configuration,
selector parameters, budget, ``max_mg_size``, ``max_insts``, …) plus a
code-version salt derived from the simulator sources. Because the key
covers everything the value depends on, a key either names exactly one
value or nothing: there is no invalidation protocol, only misses.

The store is two-layered. An in-memory dict gives object *identity*
within a process (``runner.trace(b) is runner.trace(b)``), preserving the
old ``Runner`` memoization contract; an optional on-disk layer persists
artifacts across processes and interpreter restarts and is what lets
scheduler worker processes share upstream work. Disk writes are atomic
(temp file + ``os.replace``) so a crashed or killed worker can never
publish a torn artifact, and unreadable payloads are treated as misses
and deleted rather than propagated.

The disk layer is pluggable behind :class:`ArtifactBackend`. All
backends share one byte-identical blob layout::

    <root>/ab/<sha256>.pkl    # pickled payload  (sharded by 2-hex prefix)
    <root>/ab/<sha256>.json   # sidecar: kind, params, created, size, sha

What differs is the *index*: :class:`DirBackend` (the default and the
historical behavior) answers ``stats``/``prune``/``dedup`` by walking the
sidecars, while :class:`repro.dist.sqlite_store.SqliteManifestBackend`
keeps a SQLite manifest alongside the blobs so those queries stay O(rows
matched) at millions of artifacts. Because every backend writes the same
blobs *and* sidecars, a store directory can be opened with either backend
at any time; the manifest is an index, not a format change.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union,
)

#: Sentinel returned by :meth:`ArtifactStore.get` on a miss, so that
#: ``None`` remains a storable value.
MISS = object()

#: Subpackages whose sources determine artifact values. ``harness`` and
#: ``exec`` are deliberately excluded: they orchestrate, they don't
#: change what a trace/plan/timing run contains.
_SALT_PACKAGES = ("isa", "pipeline", "minigraph", "workloads", "analysis")

#: Explicit version of the trace/record memory layout and the timing
#: core's execution strategy. The source digest below already covers
#: Python edits; bump this when a change alters artifact content in a
#: way the digest cannot see (or to force a fleet-wide cache flush).
#: 2 = flat ``PackedTrace`` columns + event-driven core + compiled kernel.
#: 3 = compiled-kernel event tap: observed (collector/attribution) runs
#:     now execute on the C kernel, so their artifacts are produced by a
#:     different engine than version 2 recorded.
LAYOUT_VERSION = 3

_code_version: Optional[str] = None


def code_version() -> str:
    """Salt for artifact keys: SHA-256 over the simulator sources.

    Any edit to the ISA, pipeline model, mini-graph machinery, workload
    builders, or analysis code changes the salt and silently invalidates
    every cached artifact — stale results can never be served after a
    code change. Non-Python sources (the compiled timing kernel) and the
    explicit :data:`LAYOUT_VERSION` are folded in as well.
    """
    global _code_version
    if _code_version is None:
        pkg_root = Path(__file__).resolve().parent.parent
        _code_version = source_digest(pkg_root)
    return _code_version


def source_digest(pkg_root: Path,
                  packages: Sequence[str] = _SALT_PACKAGES) -> str:
    """The code-version digest over one source tree (testable directly).

    Walks ``pkg_root/<package>`` for every salt package, folding file
    names and bytes of every ``*.py`` *and* ``*.c`` source into one
    SHA-256 — native-kernel edits invalidate cached artifacts exactly
    like Python edits do.
    """
    digest = hashlib.sha256()
    digest.update(f"layout:{LAYOUT_VERSION}".encode())
    for package in packages:
        package_root = Path(pkg_root) / package
        paths = sorted(package_root.glob("*.py")) + \
            sorted(package_root.glob("*.c"))
        for path in paths:
            digest.update(path.name.encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


@dataclass
class StoreStats:
    """Lookup counters for one :class:`ArtifactStore` instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0
    corrupt_dropped: int = 0
    by_kind: Dict[str, List[int]] = field(default_factory=dict)  # [hit, miss]

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def record(self, kind: str, hit: bool) -> None:
        entry = self.by_kind.setdefault(kind, [0, 0])
        entry[0 if hit else 1] += 1

    def render(self) -> str:
        parts = [f"{self.hits} hits / {self.lookups} lookups "
                 f"({self.hit_rate:.1%})",
                 f"{self.puts} writes"]
        if self.corrupt_dropped:
            parts.append(f"{self.corrupt_dropped} corrupt dropped")
        detail = ", ".join(
            f"{kind} {hit}/{hit + miss}"
            for kind, (hit, miss) in sorted(self.by_kind.items()))
        line = "[cache] " + ", ".join(parts)
        return f"{line}\n[cache] by kind: {detail}" if detail else line


def resolve_cache_dir(arg: Optional[str],
                      no_cache: bool = False) -> Optional[str]:
    """CLI policy for the disk layer: flag > ``$REPRO_CACHE_DIR`` > none."""
    if no_cache:
        return None
    return arg or os.environ.get("REPRO_CACHE_DIR") or None


def resolve_store_backend(arg: Optional[str] = None) -> str:
    """CLI policy for the disk backend: flag > ``$REPRO_STORE_BACKEND`` > dir."""
    return arg or os.environ.get("REPRO_STORE_BACKEND") or "dir"


def _atomic_write(path: Path, data: bytes) -> None:
    fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                    prefix=".tmp-", suffix=".part")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def iter_sidecars(root: Path) -> Iterable[Tuple[str, Dict[str, Any]]]:
    """Walk the shared blob layout's JSON sidecars: ``(key, meta)`` pairs.

    Unreadable sidecars yield an empty meta rather than raising, so one
    torn write can never poison a maintenance sweep.
    """
    for sidecar in sorted(root.glob("??/*.json")):
        try:
            meta = json.loads(sidecar.read_text())
        except (OSError, ValueError):
            meta = {}
        yield sidecar.stem, meta


class ArtifactBackend:
    """Disk layer of an :class:`ArtifactStore`.

    A backend moves payload bytes and answers index queries; keys,
    pickling, the memory layer, and corruption policy all stay in the
    store. The blob layout (sharded ``.pkl`` + ``.json`` sidecar pairs,
    atomic writes) is implemented here once and shared by every backend
    so that payload bytes are identical no matter which index fronts
    them; subclasses provide :meth:`entries` and may override the
    maintenance queries with something faster than a directory walk.
    """

    name = "?"

    def __init__(self, root: Union[str, os.PathLike]):
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)

    # -- blob layout (identical across backends) ------------------------------

    def payload_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def sidecar_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def read(self, key: str) -> Optional[bytes]:
        """Payload bytes, or ``None`` if absent. I/O errors propagate."""
        try:
            with open(self.payload_path(key), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def write(self, key: str, payload: bytes, meta: Dict[str, Any]) -> None:
        shard = self.root / key[:2]
        shard.mkdir(parents=True, exist_ok=True)
        _atomic_write(self.payload_path(key), payload)
        _atomic_write(self.sidecar_path(key),
                      json.dumps(meta, sort_keys=True).encode())

    def delete(self, key: str) -> None:
        for path in (self.payload_path(key), self.sidecar_path(key)):
            try:
                path.unlink()
            except OSError:
                pass

    def touch(self, key: str) -> None:
        """Record an access (for LRU-style pruning). No-op by default."""

    # -- index ----------------------------------------------------------------

    def entries(self) -> Iterable[Tuple[str, Dict[str, Any]]]:
        """Every ``(key, meta)`` in the index, sorted by key."""
        raise NotImplementedError

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-kind ``{count, bytes}``."""
        summary: Dict[str, Dict[str, int]] = {}
        for _key, meta in self.entries():
            kind = meta.get("kind", "?")
            entry = summary.setdefault(kind, {"count": 0, "bytes": 0})
            entry["count"] += 1
            entry["bytes"] += int(meta.get("size", 0) or 0)
        return summary

    def prune(self, cutoff: Optional[float],
              kind_set: Optional[set]) -> List[str]:
        """Delete artifacts older than ``cutoff`` / of ``kind_set``.

        Returns the deleted keys so the store can evict its memory layer.
        """
        removed = []
        for key, meta in list(self.entries()):
            if kind_set is not None and meta.get("kind") not in kind_set:
                continue
            if cutoff is not None and \
                    float(meta.get("created", 0) or 0) > cutoff:
                continue
            self.delete(key)
            removed.append(key)
        return removed

    def clear(self) -> int:
        """Drop every artifact; returns artifacts removed."""
        removed = 0
        for key, _meta in list(self.entries()):
            self.delete(key)
            removed += 1
        # Payloads whose sidecar was already lost.
        for orphan in list(self.root.glob("??/*.pkl")):
            try:
                orphan.unlink()
            except OSError:
                continue
            removed += 1
        return removed

    def dedup(self) -> Dict[str, int]:
        """Hard-link payloads with identical bytes.

        Distinct keys can address identical payloads (e.g. two configs
        that happen to produce the same plan). Linking them reclaims the
        duplicate bytes without touching any key or sidecar — reads are
        unaffected. Returns ``{groups, linked, bytes_saved}``.
        """
        by_sha: Dict[str, List[Tuple[str, int]]] = {}
        for key, meta in self.entries():
            sha = meta.get("sha")
            if not sha:
                # Pre-manifest sidecars carry no payload digest.
                try:
                    sha = hashlib.sha256(
                        self.payload_path(key).read_bytes()).hexdigest()
                except OSError:
                    continue
            by_sha.setdefault(sha, []).append(
                (key, int(meta.get("size", 0) or 0)))
        report = {"groups": 0, "linked": 0, "bytes_saved": 0}
        for _sha, members in sorted(by_sha.items()):
            if len(members) < 2:
                continue
            canon = self.payload_path(members[0][0])
            try:
                canon_stat = os.stat(canon)
            except OSError:
                continue
            group_linked = 0
            for key, size in members[1:]:
                dup = self.payload_path(key)
                try:
                    dup_stat = os.stat(dup)
                except OSError:
                    continue
                if (dup_stat.st_dev, dup_stat.st_ino) == \
                        (canon_stat.st_dev, canon_stat.st_ino):
                    continue
                tmp = dup.parent / f".lnk-{key}"
                try:
                    os.link(canon, tmp)
                    os.replace(tmp, dup)
                except OSError:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    continue
                group_linked += 1
                report["linked"] += 1
                report["bytes_saved"] += size or dup_stat.st_size
            if group_linked:
                report["groups"] += 1
        return report

    def close(self) -> None:
        """Release backend resources (db handles). No-op by default."""


class DirBackend(ArtifactBackend):
    """The historical flat-directory backend: the sidecars *are* the index.

    Every maintenance query walks ``<root>/??/*.json`` — perfectly fine
    for thousands of artifacts, O(walk) at millions, which is what the
    SQLite manifest backend exists to fix.
    """

    name = "dir"

    def entries(self) -> Iterable[Tuple[str, Dict[str, Any]]]:
        return iter_sidecars(self.root)


def make_backend(spec: Union[str, ArtifactBackend, None],
                 root: Union[str, os.PathLike]) -> ArtifactBackend:
    """Resolve a backend spec (name, instance, or ``None``) for ``root``."""
    if isinstance(spec, ArtifactBackend):
        return spec
    name = resolve_store_backend(spec)
    if name == "dir":
        return DirBackend(root)
    if name == "sqlite":
        from repro.dist.sqlite_store import SqliteManifestBackend
        return SqliteManifestBackend(root)
    raise ValueError(f"unknown store backend: {name!r} "
                     f"(expected 'dir' or 'sqlite')")


class ArtifactStore:
    """Two-layer (memory + optional disk) content-addressed cache.

    ``root=None`` gives a memory-only store with the exact semantics of
    the old in-``Runner`` memo dicts. With a ``root``, artifacts also
    persist to disk and are shared with any process pointed at the same
    directory. ``backend`` selects the disk index: ``"dir"`` (default),
    ``"sqlite"``, or a ready :class:`ArtifactBackend` instance.
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 salt: Optional[str] = None,
                 backend: Union[str, ArtifactBackend, None] = None):
        if isinstance(backend, ArtifactBackend):
            self.backend: Optional[ArtifactBackend] = backend
        elif root is not None:
            self.backend = make_backend(backend, root)
        else:
            self.backend = None
        self.root = self.backend.root if self.backend is not None else None
        self.salt = salt if salt is not None else code_version()
        self._memory: Dict[str, Any] = {}
        self.stats = StoreStats()
        #: Optional :class:`repro.obs.telemetry.TelemetryWriter`. When
        #: set (``attach_store_telemetry``), every miss in
        #: :meth:`get_or_compute` is wrapped in a ``runner`` span and
        #: every hit emits a ``store`` cache-hit instant. ``None`` (the
        #: default) keeps the store observation-free.
        self.telemetry = None
        #: Optional callback fired when a corrupt disk payload is
        #: dropped and recovered as a miss: ``on_corrupt(key, error)``.
        #: Corruption recovery is otherwise invisible outside
        #: ``stats.corrupt_dropped`` — long-lived processes (the serve
        #: daemon) hook this to count and log recoveries as they happen.
        self.on_corrupt: Optional[Callable[[str, Exception], None]] = None

    @property
    def persistent(self) -> bool:
        return self.backend is not None

    @property
    def backend_name(self) -> str:
        return self.backend.name if self.backend is not None else "memory"

    # -- keys -----------------------------------------------------------------

    def key(self, kind: str, params: Dict[str, Any]) -> str:
        """Content address: SHA-256 of kind + canonical params + salt.

        ``params`` must be JSON-serializable; the canonical form sorts
        keys so dict construction order cannot perturb the address.
        """
        canonical = json.dumps(params, sort_keys=True, separators=(",", ":"))
        blob = f"{kind}|{self.salt}|{canonical}".encode()
        return hashlib.sha256(blob).hexdigest()

    def _payload_path(self, key: str) -> Path:
        return self.backend.payload_path(key)

    def _sidecar_path(self, key: str) -> Path:
        return self.backend.sidecar_path(key)

    # -- lookup / insert ------------------------------------------------------

    def _drop_corrupt(self, key: str, error: Exception) -> None:
        self.stats.corrupt_dropped += 1
        self.backend.delete(key)
        if self.on_corrupt is not None:
            self.on_corrupt(key, error)

    def get(self, key: str, kind: str = "?") -> Any:
        """The stored value, or :data:`MISS`.

        A disk payload that fails to read or unpickle (torn write from a
        killed process, version skew, bit rot) is deleted and reported as
        a miss: corruption degrades to recomputation, never to an error.
        """
        if key in self._memory:
            self.stats.memory_hits += 1
            self.stats.record(kind, hit=True)
            return self._memory[key]
        if self.backend is not None:
            try:
                payload = self.backend.read(key)
            except Exception as error:
                payload = None
                self._drop_corrupt(key, error)
            if payload is not None:
                try:
                    value = pickle.loads(payload)
                except Exception as error:
                    self._drop_corrupt(key, error)
                else:
                    self._memory[key] = value
                    self.stats.disk_hits += 1
                    self.stats.record(kind, hit=True)
                    self.backend.touch(key)
                    return value
        self.stats.misses += 1
        self.stats.record(kind, hit=False)
        return MISS

    def seed(self, key: str, value: Any) -> None:
        """Insert into the memory layer only (no disk write).

        For values that are *views* of process-local resources — e.g. a
        trace rehydrated over a shared-memory segment — which must make
        later lookups hit but can never be pickled to disk.
        """
        self._memory.setdefault(key, value)

    def put(self, key: str, value: Any, kind: str = "?",
            params: Optional[Dict[str, Any]] = None) -> None:
        """Publish an artifact (memory always; disk atomically if enabled)."""
        self._memory[key] = value
        self.stats.puts += 1
        if self.backend is None:
            return
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        self.backend.write(key, payload, {
            "kind": kind,
            "params": params or {},
            "created": time.time(),
            "size": len(payload),
            "sha": hashlib.sha256(payload).hexdigest(),
            "salt": self.salt,
        })

    def get_or_compute(self, kind: str, params: Dict[str, Any],
                       compute: Callable[[], Any]) -> Any:
        """Memoize ``compute()`` under the content address of ``params``."""
        key = self.key(kind, params)
        value = self.get(key, kind)
        telemetry = self.telemetry
        if value is MISS:
            if telemetry is not None:
                args = {k: v for k, v in params.items()
                        if isinstance(v, (str, int, float, bool))}
                args["kind"] = kind
                with telemetry.span(kind, "runner", args=args):
                    value = compute()
            else:
                value = compute()
            self.put(key, value, kind, params)
        elif telemetry is not None:
            telemetry.instant("cache-hit", "store", {"kind": kind})
        return value

    def contains(self, key: str) -> bool:
        """Durable-output probe: memory hit or a disk payload on record.

        Unlike :meth:`get`, never unpickles (and so never pays for or
        validates the payload) — this is the cheap existence test the
        warm-path pruner and resume machinery use.
        """
        if key in self._memory:
            return True
        if self.backend is None:
            return False
        return self.backend.payload_path(key).exists()

    # -- maintenance ----------------------------------------------------------

    def _sidecars(self) -> Iterable[Tuple[str, Dict[str, Any]]]:
        if self.backend is None:
            return
        yield from self.backend.entries()

    def disk_summary(self) -> Dict[str, Dict[str, int]]:
        """Per-kind ``{count, bytes}`` from the backend index."""
        if self.backend is None:
            return {}
        return self.backend.summary()

    def _delete(self, key: str) -> None:
        if self.backend is not None:
            self.backend.delete(key)
        self._memory.pop(key, None)

    def clear(self) -> int:
        """Drop every artifact (memory and disk); returns artifacts removed."""
        removed = len(self._memory)
        self._memory.clear()
        if self.backend is not None:
            removed = self.backend.clear()
        return removed

    def prune(self, max_age: Optional[float] = None,
              kinds: Optional[Iterable[str]] = None) -> int:
        """Delete disk artifacts older than ``max_age`` seconds / by kind."""
        if self.backend is None:
            return 0
        kind_set = set(kinds) if kinds is not None else None
        cutoff = time.time() - max_age if max_age is not None else None
        removed = self.backend.prune(cutoff, kind_set)
        for key in removed:
            self._memory.pop(key, None)
        return len(removed)

    def dedup(self) -> Dict[str, int]:
        """Hard-link identical payloads; see :meth:`ArtifactBackend.dedup`."""
        if self.backend is None:
            return {"groups": 0, "linked": 0, "bytes_saved": 0}
        return self.backend.dedup()
