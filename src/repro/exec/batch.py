"""Batched native dispatch: one GIL-released C call per scheduler wave.

Process fan-out (``--jobs N``) pays a pickle round-trip and a worker
process per timing point. For grids whose points all ride the compiled
kernel that overhead dominates: the cycle loop itself releases the GIL
(ctypes drops it for the call's duration), so the natural unit of
parallelism is a *batch* — every ready timing node of one scheduler
wave packed into an array of descriptors and handed to
``repro_run_batch``, which fans the points over a pthread pool inside
the single call. No processes, no pickling, no persistent store.

:func:`run_batch_wave` is the bridge. For each batchable task it
reconstructs the runner-side setup through the ``*_prepared`` helpers
(:class:`~repro.harness.runner.Runner.baseline_prepared` and friends) —
the same code path the serial computes use — probes the artifact store,
collects one :func:`repro.pipeline.ckern.run_batch` descriptor per
store miss, dispatches once, and publishes each finished artifact under
the identical store key with the identical summary dict the task
function would have returned. Any point the kernel cannot finish (tap
overflow, simulated deadlock, ineligible core, store hit) is simply
left out of the returned map; the scheduler reruns it through
:func:`~repro.exec.tasks.run_timing` et al. serially, preserving the
retry/raise semantics bit for bit. Results are bit-identical to
``--jobs 1`` by construction: the batch path runs the same kernel on
the same descriptors and the fallback path *is* the serial path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from . import tasks as task_fns
from .store import MISS

#: ``OoOCore.run``'s cycle budget — batched points must deadlock at the
#: same horizon the per-point path uses or parity breaks on pathologies.
DEFAULT_MAX_CYCLES = 200_000_000


def is_batchable(task) -> bool:
    """Can this DAG node ride the batched kernel dispatch?

    Timing-shaped nodes only: baselines, slack profiles, and selector
    timing runs. Slack-dynamic points carry a run-time policy, which
    forces the Python reference loop, and every other stage (trace,
    candidates, plan, check) is not a cycle loop at all.
    """
    if task.fn in (task_fns.run_baseline, task_fns.run_profile):
        return True
    if task.fn is task_fns.run_timing:
        return task.args[0].get("point_kind") != "slack-dynamic"
    return False


@dataclass
class _Prepared:
    """One store-missing point, ready for native dispatch."""

    task_id: str
    runner: Any
    kind: str                      # store artifact kind
    params: Dict[str, Any]         # store-key params
    core: Any                      # un-run OoOCore
    finalize: Callable             # stats -> artifact
    summarize: Callable            # artifact -> task summary dict
    entry: tuple                   # ckern.run_batch descriptor
    start: float                   # perf_counter at prepare start


def _prepare(task) -> Optional[_Prepared]:
    """Set one task's point up for the batch, or None for serial.

    None covers every reason the batch cannot help: the artifact is
    already stored (the serial rerun is a memo hit), the point kind has
    no prepared form, or the constructed core is not kernel-eligible
    (``REPRO_PURE_PY``, no compiler, tap-incapable observer).
    """
    start = time.perf_counter()
    spec = task.args[0]
    runner = task_fns._runner(spec)
    bench = runner._bench(spec["bench"])
    input_name = spec["input"]
    config = task_fns._config(spec["config"])

    if task.fn is task_fns.run_profile:
        global_slack = spec.get("global_slack", False)
        kind = "profile"
        params = runner.profile_params(bench.name, config, input_name,
                                       global_slack)
        if runner.store.get(runner.store.key(kind, params), kind) \
                is not MISS:
            return None
        core, finalize = runner.profile_prepared(
            bench, config, input_name, global_slack=global_slack)
        summarize = task_fns.profile_summary
    elif task.fn is task_fns.run_baseline \
            or spec.get("point_kind") == "baseline":
        kind = "baseline"
        params = runner.baseline_params(bench.name, config, input_name)
        if runner.store.get(runner.store.key(kind, params), kind) \
                is not MISS:
            return None
        core, finalize = runner.baseline_prepared(bench, config, input_name)
        summarize = task_fns.baseline_summary \
            if task.fn is task_fns.run_baseline \
            else task_fns.timing_baseline_summary
    elif task.fn is task_fns.run_timing:
        selector = task_fns.selector_from_spec(spec["selector"])
        from ..pipeline.config import config_by_name
        profile_config = task_fns._config(spec["profile_config"]) \
            if spec.get("profile_config") else None
        profile_input = spec.get("profile_input")
        global_slack = spec.get("global_slack", False)
        kind = "run"
        # Key on the *resolved* profiling parameters, exactly as
        # Runner.run_selector does.
        params = runner.run_params(
            bench.name, selector.spec(), config, input_name,
            profile_config if profile_config is not None
            else config_by_name("reduced"),
            profile_input or input_name, global_slack, None)
        if runner.store.get(runner.store.key(kind, params), kind) \
                is not MISS:
            return None
        core, finalize = runner.selector_prepared(
            bench, selector, config, input_name=input_name,
            profile_config=profile_config, profile_input=profile_input,
            global_slack=global_slack)
        summarize = task_fns.timing_summary
    else:
        return None

    entry = core.kernel_batch_entry(DEFAULT_MAX_CYCLES)
    if entry is None:
        return None
    return _Prepared(task.id, runner, kind, params, core, finalize,
                     summarize, entry, start)


def run_batch_wave(tasks: Sequence, threads: int
                   ) -> Dict[str, tuple]:
    """Run one wave of batchable tasks through a single native dispatch.

    Returns ``{task id: (summary dict, duration)}`` for every point the
    kernel completed; the caller reruns missing ids through the normal
    per-point path. Never raises for a single point's sake — a setup
    failure (missing benchmark, broken plan) is left for the serial
    rerun to surface with the scheduler's retry policy attached.
    """
    from ..pipeline import ckern
    results: Dict[str, tuple] = {}
    if not ckern.available():
        return results
    prepared: List[_Prepared] = []
    # Prepare in (bench, input) order: plan construction behind
    # selector points reuses per-program state (hoisted template sites,
    # packed static columns, profile scoring columns) through bounded
    # caches, so grouping same-program points keeps those caches hot.
    # Results are keyed by task id, so the order is otherwise free.
    def _locality(task):
        spec = task.args[0]
        return (str(spec.get("bench", "")), str(spec.get("input", "")))

    for task in sorted(tasks, key=_locality):
        try:
            p = _prepare(task)
        except Exception:  # noqa: BLE001 - serial rerun reports it
            continue
        if p is not None:
            prepared.append(p)
    if not prepared:
        return results

    batch = ckern.run_batch([p.entry for p in prepared], threads)
    if batch is None:
        return results
    for p, point in zip(prepared, batch):
        rc, out, events, n_words, overflowed = point
        try:
            stats = p.core.apply_kernel_result(rc, out, events, n_words,
                                               overflowed)
        except Exception:  # noqa: BLE001 - deadlock: serial path raises it
            ckern.counters["batch_fallbacks"] += 1
            continue
        if stats is None:
            ckern.counters["batch_fallbacks"] += 1
            continue
        artifact = p.finalize(stats)
        p.runner.store.put(p.runner.store.key(p.kind, p.params), artifact,
                           p.kind, p.params)
        results[p.task_id] = (p.summarize(artifact),
                              time.perf_counter() - p.start)
    return results
