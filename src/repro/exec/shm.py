"""Zero-copy trace transport for scheduler worker processes.

Functional traces are by far the largest artifacts the executor moves:
a 2M-instruction singleton trace pickles to tens of megabytes, and
without help every worker process re-reads and re-unpickles it from the
on-disk :class:`~repro.exec.store.ArtifactStore`. This module instead
publishes the trace's :class:`~repro.isa.interp.PackedTrace` columns
into one ``multiprocessing.shared_memory`` segment per distinct
(benchmark, input) pair; workers attach the segment and wrap the columns
in ``memoryview.cast`` views — the numeric payload is mapped, not
copied. Only the small per-record ``TraceRecord`` objects (needed by
rename, folding, and lockstep checking) are rebuilt, once per process,
and the rehydrated trace is memoized by segment name.

Ownership protocol:

* the **parent** (scheduler driver) creates segments via
  :class:`ShmRegistry` and is the only process that ever unlinks them —
  ``release_all()`` runs in the driver's ``finally`` so segments never
  outlive the run, even when a worker is killed mid-task;
* **workers** attach read-only-by-convention and immediately
  de-register the segment from their ``resource_tracker`` (Python 3.12
  and earlier register on *attach* too, and a dying worker's tracker
  would otherwise unlink the parent's live segment — or warn about a
  "leak" it does not own);
* every failure path (no ``/dev/shm``, segment vanished, unpicklable
  layout) returns ``None`` and the caller silently falls back to the
  ordinary pickle-through-the-store transport.

Only singleton traces (no mini-graph handles) are published: handle
records carry object-graph state (sites, templates) that the flat
column layout deliberately does not encode — folded traces are always
rebuilt worker-side from the plan anyway.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, List, Optional

from ..isa.interp import PackedTrace, Trace, TraceRecord

#: Fixed column order of the segment payload. All ``'q'`` (int64)
#: columns first — the segment starts 8-byte aligned, so keeping the
#: two byte columns last means no padding arithmetic anywhere.
_Q_COLUMNS = ("pc", "op", "opclass", "latency", "rd", "addr", "next_pc")


def _shared_memory():
    try:
        from multiprocessing import shared_memory
        return shared_memory
    except ImportError:  # pragma: no cover - always present on CPython
        return None


def _untrack(shm) -> None:
    """Forget an *attached* segment: the parent owns unlink, not us."""
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # noqa: BLE001 - tracker internals vary by version
        pass


def segment_size(packed: PackedTrace, n_memory: int) -> int:
    """Total payload bytes for one packed trace."""
    n = packed.n
    q_words = len(_Q_COLUMNS) * n + (n + 1) + len(packed.srcs) \
        + max(n_memory, 0)
    return 8 * q_words + 2 * n


class ShmRegistry:
    """Parent-side registry of published trace segments.

    Segments are deduplicated and refcounted by (bench, input,
    max_insts): publishing the same trace twice returns the same
    descriptor, and :meth:`release` only unlinks once the last
    publisher lets go. :meth:`release_all` force-unlinks everything —
    the driver's ``finally`` backstop against leaked ``/dev/shm``
    entries when workers die mid-flight.
    """

    def __init__(self):
        self._segments: Dict[tuple, list] = {}  # key -> [shm, desc, refs]

    def publish(self, trace: Trace, bench: str, input_name: str,
                max_insts: int) -> Optional[Dict[str, Any]]:
        """Place ``trace``'s columns in shared memory; None on fallback."""
        key = (bench, input_name, max_insts)
        entry = self._segments.get(key)
        if entry is not None:
            entry[2] += 1
            return entry[1]
        shared_memory = _shared_memory()
        if shared_memory is None:
            return None
        packed = trace.packed()
        n = packed.n
        if n == 0 or any(packed.kind):
            return None  # empty or folded: not transportable
        memory = trace.final_memory
        n_memory = len(memory) if memory is not None else -1
        try:
            shm = shared_memory.SharedMemory(
                create=True, size=segment_size(packed, n_memory))
        except OSError:
            return None  # no /dev/shm (or it is full): fall back
        offset = 0
        columns: List[array] = [getattr(packed, name)
                                for name in _Q_COLUMNS]
        columns += [packed.srcs_start, packed.srcs]
        if n_memory >= 0:
            columns.append(array("q", memory))
        columns += [packed.kind, packed.taken]
        buf = shm.buf
        for column in columns:
            raw = column.tobytes()
            buf[offset:offset + len(raw)] = raw
            offset += len(raw)
        descriptor = {
            "segment": shm.name,
            "bench": bench,
            "input": input_name,
            "max_insts": max_insts,
            "n": n,
            "n_srcs": len(packed.srcs),
            "n_memory": n_memory,
        }
        self._segments[key] = [shm, descriptor, 1]
        return descriptor

    def release(self, descriptor: Dict[str, Any]) -> None:
        """Drop one reference; unlink the segment when none remain."""
        key = (descriptor["bench"], descriptor["input"],
               descriptor["max_insts"])
        entry = self._segments.get(key)
        if entry is None:
            return
        entry[2] -= 1
        if entry[2] <= 0:
            self._unlink(self._segments.pop(key)[0])

    def release_all(self) -> None:
        """Unlink every live segment regardless of refcount."""
        for entry in list(self._segments.values()):
            self._unlink(entry[0])
        self._segments.clear()

    def __len__(self) -> int:
        return len(self._segments)

    @staticmethod
    def _unlink(shm) -> None:
        try:
            shm.close()
        except BufferError:  # a live export; unlink still reclaims it
            pass
        # Fork-started workers share this process's resource tracker, so
        # their attach/untrack dance may have dropped our registration;
        # put it back (register is idempotent) or unlink()'s own
        # unregister makes the tracker process print a KeyError.
        try:
            from multiprocessing import resource_tracker
            resource_tracker.register(shm._name, "shared_memory")
        except Exception:  # noqa: BLE001 - tracker internals vary
            pass
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass


# -- worker side ---------------------------------------------------------------

#: segment name -> (SharedMemory, rehydrated Trace). Process-lifetime:
#: attached segments stay mapped so the zero-copy columns remain valid
#: for every later task in the same worker.
_ATTACHED: Dict[str, tuple] = {}


def attach_trace(descriptor: Dict[str, Any]) -> Optional[Trace]:
    """The trace behind ``descriptor``, rebuilt over the shared columns.

    Memoized per process by segment name. Returns ``None`` whenever the
    segment cannot be attached (already released, no shared memory on
    this platform) — callers fall back to the artifact store.
    """
    name = descriptor["segment"]
    cached = _ATTACHED.get(name)
    if cached is not None:
        return cached[1]
    shared_memory = _shared_memory()
    if shared_memory is None:
        return None
    try:
        shm = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return None
    _untrack(shm)
    # The columns below stay exported for the life of the process, so a
    # close() at GC / interpreter shutdown would raise BufferError;
    # neuter it — the OS reclaims the mapping at process exit anyway.
    shm.close = lambda: None
    trace = _rehydrate(descriptor, memoryview(shm.buf))
    _ATTACHED[name] = (shm, trace)
    return trace


def _rehydrate(descriptor: Dict[str, Any], buf: memoryview) -> Trace:
    n = descriptor["n"]
    n_srcs = descriptor["n_srcs"]
    n_memory = descriptor["n_memory"]
    offset = 0

    def q_view(count: int):
        nonlocal offset
        if count == 0:
            return array("q")
        view = buf[offset:offset + 8 * count].cast("q")
        offset += 8 * count
        return view

    def b_view(count: int):
        nonlocal offset
        if count == 0:
            return array("b")
        view = buf[offset:offset + count].cast("b")
        offset += count
        return view

    cols = {name: q_view(n) for name in _Q_COLUMNS}
    srcs_start = q_view(n + 1)
    srcs = q_view(n_srcs)
    final_memory = list(q_view(n_memory)) if n_memory >= 0 else None
    kind = b_view(n)
    taken = b_view(n)

    pc, op, opclass = cols["pc"], cols["op"], cols["opclass"]
    latency, rd = cols["latency"], cols["rd"]
    addr, next_pc = cols["addr"], cols["next_pc"]
    record = TraceRecord
    objs: List[TraceRecord] = []
    append = objs.append
    start = srcs_start[0]
    for i in range(n):
        end = srcs_start[i + 1]
        append(record(pc[i], op[i], opclass[i], latency[i], rd[i],
                      tuple(srcs[start:end]), addr[i], bool(taken[i]),
                      next_pc[i]))
        start = end
    packed = PackedTrace(objs, kind, pc, op, opclass, latency, rd, addr,
                         taken, next_pc, srcs, srcs_start)
    program = _program(descriptor["bench"], descriptor["input"])
    trace = Trace(program, objs, input_name=descriptor["input"],
                  final_memory=final_memory)
    trace._packed = packed
    return trace


#: (bench, input) -> Program; program construction is deterministic but
#: not free, and every task on the same benchmark shares one instance.
_PROGRAMS: Dict[tuple, Any] = {}


def _program(bench: str, input_name: str):
    key = (bench, input_name)
    program = _PROGRAMS.get(key)
    if program is None:
        from ..workloads.suite import benchmark
        program = _PROGRAMS[key] = benchmark(bench).program(input_name)
    return program
