"""Setuptools shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs fail; this shim enables the legacy editable path::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
