"""Serve hardening: bounded job table, bounded event logs, and client
stream auto-resume across dropped connections."""

import asyncio

import pytest

from repro.serve.client import ServeClient, ServeError
from repro.serve.events import JobEventLog
from repro.serve.server import ServeApp, ServerConfig

BASELINE_SPEC = {"points": [{"kind": "baseline", "bench": "crc32",
                             "config": "reduced", "input": "train"}]}


def serve(state_dir, body, **overrides):
    async def _main():
        overrides.setdefault("quiet", True)
        app = ServeApp(ServerConfig(state_dir=state_dir, **overrides))
        await app.start()
        try:
            return await body(app, ServeClient(app.config.address,
                                               client_id="test"))
        finally:
            await app.stop()
    return asyncio.run(_main())


class TestEventLogTruncation:
    def test_window_drops_front_and_keeps_absolute_indexing(self):
        log = JobEventLog({"label": "x"}, max_events=5)
        for i in range(12):
            log.instant(f"e{i}", "test")
        assert len(log.events) == 5
        assert log.truncated == 7
        assert log.end == 12
        assert [e["name"] for e in log.events] == \
            [f"e{i}" for i in range(7, 12)]

    def test_on_truncate_reports_drop_counts(self):
        drops = []
        log = JobEventLog({"label": "x"}, max_events=2)
        log.on_truncate = drops.append
        for i in range(5):
            log.instant(f"e{i}", "test")
        assert sum(drops) == 3

    def test_stream_below_base_yields_one_marker(self):
        log = JobEventLog({"label": "x"}, max_events=3)
        for i in range(10):
            log.instant(f"e{i}", "test")
        log.close()

        async def collect():
            import json
            return [json.loads(line) async for line in log.stream(0)]

        records = asyncio.run(collect())
        assert records[0] == {"label": "x"}         # manifest
        marker = records[1]
        assert marker["name"] == "events-truncated"
        assert marker["args"] == {"dropped": 7, "next": 7}
        assert [r["name"] for r in records[2:]] == \
            [f"e{i}" for i in range(7, 10)]

    def test_unbounded_by_default(self):
        log = JobEventLog({"label": "x"})
        for i in range(100):
            log.instant(f"e{i}", "test")
        assert len(log.events) == 100
        assert log.truncated == 0


class TestJobTableBounds:
    def test_lru_eviction_beyond_max_results(self, tmp_path):
        async def body(app, client):
            first = await client.submit("fuzz", {"budget": 0.1})
            await client.wait(first["id"], timeout=120)
            second = await client.submit("fuzz", {"budget": 0.1})
            await client.wait(second["id"], timeout=120)
            # max_results=1: finishing the second evicts the first.
            assert app.stats.results_evicted >= 1
            with pytest.raises(ServeError) as exc:
                await client.status(first["id"])
            assert exc.value.status == 404
            # The newest terminal job is still queryable.
            doc = await client.status(second["id"])
            assert doc["state"] == "done"
            stats = await client.stats()
            assert stats["results_evicted"] >= 1
        serve(tmp_path, body, max_results=1)

    def test_ttl_expiry_evicts_even_under_the_cap(self, tmp_path):
        async def body(app, client):
            first = await client.submit("fuzz", {"budget": 0.1})
            await client.wait(first["id"], timeout=120)
            await asyncio.sleep(0.25)
            second = await client.submit("fuzz", {"budget": 0.1})
            await client.wait(second["id"], timeout=120)
            with pytest.raises(ServeError) as exc:
                await client.status(first["id"])
            assert exc.value.status == 404
        serve(tmp_path, body, max_results=64, result_ttl=0.2)

    def test_truncation_counter_and_marker_end_to_end(self, tmp_path):
        async def body(app, client):
            summary = await client.submit("experiment", BASELINE_SPEC)
            await client.wait(summary["id"], timeout=240)
            records = [r async for r in client.events(summary["id"])]
            names = [r.get("name") for r in records]
            assert "events-truncated" in names
            assert app.stats.events_truncated > 0
            doc = await client.metrics("json")
            metric_names = {m["name"] for m in doc["metrics"]}
            assert {"server.events_truncated",
                    "server.results_evicted"} <= metric_names
        serve(tmp_path, body, max_job_events=3)


class _FlakyClient(ServeClient):
    """Exposes the live stream connection so a test can cut it."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.last_writer = None
        self.connections = 0

    async def _connect(self):
        reader, writer = await super()._connect()
        self.last_writer = writer
        self.connections += 1
        return reader, writer


class TestClientAutoResume:
    def test_stream_survives_a_mid_read_connection_kill(self, tmp_path):
        """Regression for satellite (b): kill the events connection
        mid-stream; the client must reconnect with its cursor and the
        reassembled stream must equal an unbroken replay — no gaps, no
        duplicates, one manifest."""
        async def body(app, client):
            # A 2s blocker holds the single job slot, so the target job
            # is still queued when the connection is cut: its terminal
            # events cannot possibly arrive before the reconnect.
            blocker = await client.submit("fuzz", {"budget": 2.0})
            target = await client.submit("fuzz", {"budget": 0.2})
            flaky = _FlakyClient(app.config.address, client_id="test")
            records, cut = [], False
            async for record in flaky.events(target["id"]):
                records.append(record)
                if len(records) == 2 and not cut:
                    cut = True
                    # Abort the transport under the suspended reader —
                    # the same failure as a dropped network link.
                    flaky.last_writer.transport.abort()
            assert cut
            assert flaky.connections >= 2      # it really reconnected
            replay = [r async for r in client.events(target["id"])]
            assert records == replay
            await client.wait(blocker["id"], timeout=120)
        serve(tmp_path, body, job_slots=1)

    def test_exhausted_retries_raise(self, tmp_path):
        async def body(app, client):
            summary = await client.submit("fuzz", {"budget": 0.1})
            await client.wait(summary["id"], timeout=120)
            address = app.config.address
            return summary["id"], address

        job_id, address = serve(tmp_path, body)

        async def dead_server():
            client = ServeClient(address, client_id="test")
            with pytest.raises((ConnectionError, OSError)):
                async for _record in client.events(job_id, retries=1,
                                                   backoff=0.01):
                    pass
        asyncio.run(dead_server())
