"""Warm-path probes: store-address parity with the compute paths."""

import pytest

from repro.exec.dag import Scheduler
from repro.exec.grid import baseline_point, build_tasks, selector_point
from repro.exec.store import ArtifactStore
from repro.harness.runner import Runner
from repro.serve.warm import prune_cached, task_artifact

POINTS = [
    baseline_point("crc32", "reduced", "train"),
    selector_point("crc32", {"kind": "struct-all"}, "reduced", "train"),
]


@pytest.fixture(scope="module")
def warm_runner(tmp_path_factory):
    """A runner whose store has already executed ``POINTS``."""
    store = ArtifactStore(tmp_path_factory.mktemp("warm-store"))
    runner = Runner(store=store)
    tasks = build_tasks(POINTS, runner)
    Scheduler(jobs=1).run(tasks)
    return runner


def test_every_store_backed_node_has_an_address(warm_runner):
    tasks = build_tasks(POINTS, warm_runner, check=True)
    addressed = {t.stage: task_artifact(warm_runner, t) is not None
                 for t in tasks}
    assert addressed["trace"] and addressed["baseline"]
    assert addressed["plan"] and addressed["timing"]
    assert not addressed["check"]          # recomputes by design

def test_cold_dag_keeps_everything():
    runner = Runner(store=ArtifactStore())    # empty memory-only store
    tasks = build_tasks(POINTS, runner)
    kept, pruned = prune_cached(runner, tasks)
    assert pruned == []
    assert [t.id for t in kept] == [t.id for t in tasks]


def test_executed_dag_prunes_to_nothing(warm_runner):
    """The serving acceptance contract: repeat work schedules nothing."""
    tasks = build_tasks(POINTS, warm_runner)
    kept, pruned = prune_cached(warm_runner, tasks)
    assert kept == []
    assert sorted(pruned) == sorted(t.id for t in tasks)


def test_partial_prune_drops_dead_edges(warm_runner):
    """A DAG mixing warm and cold points keeps only the cold subgraph,
    with dependency edges into pruned nodes removed."""
    mixed = POINTS + [
        selector_point("crc32", {"kind": "struct-none"}, "reduced",
                       "train"),
    ]
    tasks = build_tasks(mixed, warm_runner)
    kept, pruned = prune_cached(warm_runner, tasks)
    assert kept, "the struct-none plan/run must still be cold"
    kept_ids = {t.id for t in kept}
    dead = set(pruned)
    for task in kept:
        for dep in task.deps:
            assert dep in kept_ids and dep not in dead
    # And the kept subgraph actually executes on its own.
    report = Scheduler(jobs=1).run(kept)
    assert len(report.results) == len(kept)


def test_check_nodes_are_never_pruned(warm_runner):
    tasks = build_tasks(POINTS, warm_runner, check=True)
    kept, _ = prune_cached(warm_runner, tasks)
    assert {t.stage for t in kept} == {"check"}
