"""End-to-end daemon tests over a real unix socket.

Each test boots a :class:`ServeApp` inside its own ``asyncio.run`` and
talks to it with the real :class:`ServeClient` — the full wire path
(HTTP parse, routing, NDJSON streaming) is exercised, not the app
object directly. A module-scoped cache directory is shared so later
tests ride the warm path the earlier ones paid for.
"""

import asyncio
import json

import pytest

from repro.obs.metrics import validate_metrics
from repro.obs.telemetry import validate_telemetry
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import ServeApp, ServerConfig

BASELINE_SPEC = {"points": [{"kind": "baseline", "bench": "crc32",
                             "config": "reduced", "input": "train"}]}


@pytest.fixture(scope="module")
def state_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("serve-state")


def serve(state_dir, body, **overrides):
    """Boot a daemon, run ``body(app, client)``, tear down."""
    async def _main():
        overrides.setdefault("quiet", True)
        app = ServeApp(ServerConfig(state_dir=state_dir, **overrides))
        await app.start()
        try:
            return await body(app, ServeClient(app.config.address,
                                               client_id="test"))
        finally:
            await app.stop()
    return asyncio.run(_main())


class TestJobLifecycle:
    def test_submit_run_result(self, state_dir):
        async def body(app, client):
            summary = await client.submit("experiment", BASELINE_SPEC)
            assert summary["state"] in ("queued", "running")
            doc = await client.wait(summary["id"], timeout=240)
            assert doc["state"] == "done"
            point = doc["result"]["points"][0]
            assert point["bench"] == "crc32"
            assert point["ipc"] > 0
        serve(state_dir, body)

    def test_repeat_submission_is_a_zero_node_warm_hit(self, state_dir):
        """The acceptance criterion: an identical experiment completes
        the second time with zero scheduled DAG nodes."""
        async def body(app, client):
            first = await client.submit("experiment", BASELINE_SPEC)
            await client.wait(first["id"], timeout=240)
            second = await client.submit("experiment", BASELINE_SPEC)
            doc = await client.wait(second["id"], timeout=60)
            assert doc["state"] == "done"
            assert doc["warm_hit"] is True
            assert doc["nodes_scheduled"] == 0
            assert app.stats.warm_hits >= 1
        serve(state_dir, body)

    def test_status_and_listing(self, state_dir):
        async def body(app, client):
            summary = await client.submit("experiment", BASELINE_SPEC)
            await client.wait(summary["id"], timeout=240)
            status = await client.status(summary["id"])
            assert status["client"] == "test"
            assert status["state"] == "done"
            listed = await client.jobs(client="test")
            assert summary["id"] in [j["id"] for j in listed]
            assert await client.jobs(client="nobody") == []
        serve(state_dir, body)

    def test_result_conflicts_until_terminal(self, state_dir):
        async def body(app, client):
            summary = await client.submit("fuzz", {"budget": 5.0})
            with pytest.raises(ServeError) as exc:
                # Immediately: queued or just started, never terminal.
                await client.result(summary["id"])
            assert exc.value.status == 409
            await client.cancel(summary["id"])
        serve(state_dir, body)

    def test_failed_job_reports_its_error(self, state_dir):
        async def body(app, client):
            # An unknown profile_config passes admission (the plan point
            # validates lazily) — no, admission validates. Use a fuzz
            # job with an impossible spec instead: programs=0 still
            # succeeds, so force failure through a bad bench override.
            summary = await client.submit(
                "limit-study", {"bench": "adpcm", "cap": 1, "input": "nope"})
            doc = await client.wait(summary["id"], timeout=120)
            assert doc["state"] == "failed"
            assert doc["error"]
            assert app.stats.failed >= 1
        serve(state_dir, body)


class TestValidationAndQuotas:
    def test_bad_specs_rejected_at_admission(self, state_dir):
        async def body(app, client):
            for kind, spec in [("experiment", {}),
                               ("experiment", {"points": [{"bench": 7}]}),
                               ("nonsense", {}),
                               ("fuzz", {"budget": -1})]:
                with pytest.raises(ServeError) as exc:
                    await client.submit(kind, spec)
                assert exc.value.status == 400
            assert app.stats.submitted == 0
        serve(state_dir, body)

    def test_quota_overflow_is_429(self, state_dir):
        async def body(app, client):
            held = [await client.submit("fuzz", {"budget": 30.0})
                    for _ in range(3)]
            with pytest.raises(ServeError) as exc:
                await client.submit("fuzz", {"budget": 30.0})
            assert exc.value.status == 429
            assert app.stats.rejected == 1
            for summary in held:
                await client.cancel(summary["id"])
        # job_slots=1 so two jobs stay queued; max_queued counts only
        # queued jobs, so the third *queued* submission must overflow.
        serve(state_dir, body, job_slots=1, max_queued=2)


class TestCancellation:
    def test_cancel_queued_job(self, state_dir):
        async def body(app, client):
            blocker = await client.submit("fuzz", {"budget": 30.0})
            queued = await client.submit("fuzz", {"budget": 30.0})
            doc = await client.cancel(queued["id"])
            assert doc["state"] == "cancelled"
            result = await client.result(queued["id"])
            assert result["state"] == "cancelled"
            await client.cancel(blocker["id"])
        serve(state_dir, body, job_slots=1)

    def test_cancel_running_job_mid_flight(self, state_dir):
        async def body(app, client):
            summary = await client.submit("fuzz", {"budget": 60.0})
            for _ in range(200):           # wait until it is running
                status = await client.status(summary["id"])
                if status["state"] == "running":
                    break
                await asyncio.sleep(0.02)
            assert status["state"] == "running"
            await client.cancel(summary["id"])
            doc = await client.wait(summary["id"], timeout=60)
            assert doc["state"] == "cancelled"
            assert app.stats.cancelled == 1
        serve(state_dir, body)


class TestEventStreams:
    def test_events_validate_against_the_telemetry_schema(self, state_dir):
        async def body(app, client):
            summary = await client.submit("experiment", BASELINE_SPEC)
            lines = []
            async for record in client.events(summary["id"]):
                lines.append(json.dumps(record, sort_keys=True))
            report = validate_telemetry(lines)
            assert report["manifest"]["label"] == f"job/{summary['id']}"
            assert report["cats"].get("job", 0) >= 2   # queued + terminal
            assert report["spans"] == 1                # the closing span
        serve(state_dir, body)

    def test_stream_replays_history_after_completion(self, state_dir):
        async def body(app, client):
            summary = await client.submit("experiment", BASELINE_SPEC)
            await client.wait(summary["id"], timeout=240)
            names = [record["name"]
                     async for record in client.events(summary["id"])
                     if record.get("ph") == "i"]
            assert names[0] == "queued"
            assert "done" in names
        serve(state_dir, body)


class TestIntrospection:
    def test_stats_and_metrics_endpoints(self, state_dir):
        async def body(app, client):
            summary = await client.submit("experiment", BASELINE_SPEC)
            await client.wait(summary["id"], timeout=240)
            stats = await client.stats()
            assert stats["submitted"] == 1
            assert stats["completed"] == 1
            assert stats["queue_depth"] == 0
            doc = await client.metrics("json")
            validate_metrics(doc)
            names = {m["name"] for m in doc["metrics"]}
            assert {"server.jobs_submitted", "server.queue_depth",
                    "server.warm_hit_ratio",
                    "server.store_corruptions"} <= names
            prom = await client.metrics("prom")
            assert "server_jobs_submitted" in prom.replace(".", "_")
        serve(state_dir, body)

    def test_health_and_unknown_routes(self, state_dir):
        async def body(app, client):
            assert (await client.health())["ok"] is True
            with pytest.raises(ServeError) as exc:
                await client.status("j999999")
            assert exc.value.status == 404
        serve(state_dir, body)


class TestRestartRecovery:
    def test_queued_jobs_survive_a_daemon_restart(self, tmp_path):
        async def first_life():
            app = ServeApp(ServerConfig(state_dir=tmp_path, quiet=True,
                                        job_slots=1))
            await app.start()
            client = ServeClient(app.config.address, client_id="test")
            blocker = await client.submit("fuzz", {"budget": 120.0})
            queued = await client.submit("experiment", BASELINE_SPEC)
            # Kill the daemon with one job running, one queued — no
            # graceful finish for the queued job.
            await app.stop()
            return queued["id"]

        async def second_life(queued_id):
            app = ServeApp(ServerConfig(state_dir=tmp_path, quiet=True,
                                        job_slots=1))
            await app.start()
            client = ServeClient(app.config.address, client_id="test")
            status = await client.status(queued_id)
            assert status["state"] in ("queued", "running", "done")
            doc = await client.wait(queued_id, timeout=240)
            assert doc["state"] == "done"
            await app.stop()

        queued_id = asyncio.run(first_life())
        asyncio.run(second_life(queued_id))
