"""Job-queue semantics: priorities, quotas, cancellation, recovery."""

import threading

import pytest

from repro.serve.queue import (
    Job, JobQueue, JobState, PRIORITIES, Quota, QuotaExceeded,
)


def _drain(queue):
    jobs = []
    while True:
        job = queue.next_ready()
        if job is None:
            return jobs
        jobs.append(job)


class TestPriorities:
    def test_priority_classes_dispatch_in_order(self):
        queue = JobQueue(Quota(max_queued=10, max_running=10))
        batch = queue.submit("a", "fuzz", {}, priority="batch")
        normal = queue.submit("b", "fuzz", {}, priority="normal")
        urgent = queue.submit("c", "fuzz", {}, priority="interactive")
        assert [j.id for j in _drain(queue)] \
            == [urgent.id, normal.id, batch.id]

    def test_fifo_within_a_class(self):
        queue = JobQueue(Quota(max_queued=10, max_running=10))
        first = queue.submit("a", "fuzz", {})
        second = queue.submit("b", "fuzz", {})
        third = queue.submit("c", "fuzz", {})
        assert [j.id for j in _drain(queue)] \
            == [first.id, second.id, third.id]

    def test_unknown_priority_rejected(self):
        queue = JobQueue()
        with pytest.raises(ValueError, match="unknown priority"):
            queue.submit("a", "fuzz", {}, priority="urgent")


class TestQuotas:
    def test_max_queued_rejects_outright(self):
        queue = JobQueue(Quota(max_queued=2, max_running=1))
        queue.submit("a", "fuzz", {})
        queue.submit("a", "fuzz", {})
        with pytest.raises(QuotaExceeded):
            queue.submit("a", "fuzz", {})
        # Another client is unaffected.
        queue.submit("b", "fuzz", {})

    def test_dispatch_frees_queued_quota(self):
        queue = JobQueue(Quota(max_queued=1, max_running=5))
        queue.submit("a", "fuzz", {})
        with pytest.raises(QuotaExceeded):
            queue.submit("a", "fuzz", {})
        assert queue.next_ready() is not None
        queue.submit("a", "fuzz", {})   # no longer queued → admitted

    def test_max_running_skips_not_rejects(self):
        queue = JobQueue(Quota(max_queued=10, max_running=1))
        first_a = queue.submit("a", "fuzz", {})
        second_a = queue.submit("a", "fuzz", {})
        only_b = queue.submit("b", "fuzz", {})
        # a's first job dispatches, a's second is skipped, b's runs.
        assert queue.next_ready().id == first_a.id
        assert queue.next_ready().id == only_b.id
        assert queue.next_ready() is None          # a is saturated
        queue.finish(queue.jobs[first_a.id], JobState.DONE)
        assert queue.next_ready().id == second_a.id  # now eligible

    def test_saturated_client_does_not_block_lower_priority_peer(self):
        queue = JobQueue(Quota(max_queued=10, max_running=1))
        running = queue.submit("a", "fuzz", {}, priority="interactive")
        queue.submit("a", "fuzz", {}, priority="interactive")
        peer = queue.submit("b", "fuzz", {}, priority="batch")
        assert queue.next_ready().id == running.id
        assert queue.next_ready().id == peer.id


class TestCancellation:
    def test_cancel_queued_is_immediate(self):
        queue = JobQueue()
        job = queue.submit("a", "fuzz", {})
        queue.cancel(job.id)
        assert job.state == JobState.CANCELLED
        assert queue.next_ready() is None
        assert queue.depth == 0

    def test_cancel_running_sets_the_flag(self):
        queue = JobQueue()
        job = queue.submit("a", "fuzz", {})
        job.cancel_requested = threading.Event()
        assert queue.next_ready() is job
        queue.cancel(job.id)
        assert job.state == JobState.RUNNING        # cooperative
        assert job.cancel_requested.is_set()

    def test_cancel_terminal_is_a_noop(self):
        queue = JobQueue()
        job = queue.submit("a", "fuzz", {})
        queue.next_ready()
        queue.finish(job, JobState.DONE)
        queue.cancel(job.id)
        assert job.state == JobState.DONE

    def test_cancel_unknown_id(self):
        assert JobQueue().cancel("j999999") is None


class TestJournalRecovery:
    def test_queued_jobs_survive_restart(self, tmp_path):
        journal = tmp_path / "jobs.jsonl"
        queue = JobQueue(journal=journal)
        done = queue.submit("a", "fuzz", {"budget": 1})
        kept = queue.submit("b", "experiment", {"points": [1]},
                            priority="batch")
        queue.next_ready()
        queue.finish(done, JobState.DONE)
        queue.close()

        fresh = JobQueue(journal=journal)
        recovered = fresh.recover()
        assert [j.id for j in recovered] == [kept.id]
        job = recovered[0]
        assert job.client == "b"
        assert job.kind == "experiment"
        assert job.spec == {"points": [1]}
        assert job.priority == PRIORITIES["batch"]
        assert fresh.depth == 1

    def test_running_jobs_requeue_on_restart(self, tmp_path):
        journal = tmp_path / "jobs.jsonl"
        queue = JobQueue(journal=journal)
        job = queue.submit("a", "fuzz", {})
        assert queue.next_ready() is job    # running when the crash hits
        queue.close()
        fresh = JobQueue(journal=journal)
        assert [j.id for j in fresh.recover()] == [job.id]

    def test_ids_continue_after_restart(self, tmp_path):
        journal = tmp_path / "jobs.jsonl"
        queue = JobQueue(journal=journal)
        old = queue.submit("a", "fuzz", {})
        queue.close()
        fresh = JobQueue(journal=journal)
        fresh.recover()
        assert fresh.submit("a", "fuzz", {}).id > old.id

    def test_recovery_compacts_the_journal(self, tmp_path):
        journal = tmp_path / "jobs.jsonl"
        queue = JobQueue(journal=journal)
        for _ in range(5):
            job = queue.submit("a", "fuzz", {})
            queue.next_ready()
            queue.finish(job, JobState.DONE)
        queue.close()
        fresh = JobQueue(journal=journal)
        assert fresh.recover() == []
        assert journal.read_text() == ""    # nothing live to keep

    def test_torn_tail_line_is_ignored(self, tmp_path):
        journal = tmp_path / "jobs.jsonl"
        queue = JobQueue(journal=journal)
        job = queue.submit("a", "fuzz", {})
        queue.close()
        with open(journal, "a") as handle:
            handle.write('{"kind": "sub')    # crash mid-write
        fresh = JobQueue(journal=journal)
        assert [j.id for j in fresh.recover()] == [job.id]
