"""The loadtest harness against an in-process daemon.

A small fleet (CI-friendly) is enough to exercise every verification
path: concurrent submissions over the real socket, per-job follow-up,
lost/duplicate accounting, and the warm-hit gate — the pilot warm pass
plus a single shared grid point means every measured job rides the warm
path.
"""

import asyncio

from repro.serve.loadtest import (
    DEFAULT_POINTS, LoadtestReport, percentile, run_loadtest,
)
from repro.serve.server import ServeApp, ServerConfig


def test_percentile_edges():
    assert percentile([], 0.95) == 0.0
    assert percentile([3.0], 0.5) == 3.0
    values = [float(i) for i in range(1, 101)]
    assert percentile(values, 0.50) == 51.0   # nearest rank, upper
    assert percentile(values, 0.95) == 95.0


def test_report_gates():
    report = LoadtestReport(clients=2, jobs_per_client=1)
    report.submitted = 2
    report.done = 1
    report.failed = 0
    report.lost = 1
    report.server_stats = {"warm_hit_ratio": 0.0}
    problems = report.check(min_warm_ratio=0.5)
    assert any("lost" in p for p in problems)
    assert any("warm-hit" in p for p in problems)
    report.done = 2
    report.lost = 0
    report.server_stats = {"warm_hit_ratio": 0.9}
    assert report.check(min_warm_ratio=0.5) == []


def test_small_fleet_end_to_end(tmp_path):
    async def main():
        app = ServeApp(ServerConfig(
            state_dir=tmp_path, quiet=True, job_slots=4,
            max_queued=64, max_running=64))
        await app.start()
        try:
            return await run_loadtest(
                app.config.address, clients=20, jobs_per_client=2,
                points=DEFAULT_POINTS[:1], timeout=240.0)
        finally:
            await app.stop()

    report = asyncio.run(main())
    assert report.submitted == 40
    assert report.done == 40
    assert report.failed == 0
    assert report.lost == 0
    assert report.duplicate_ids == 0
    assert report.errors == []
    # The pilot warmed the single grid point: the whole measured fleet
    # must be warm hits.
    assert report.warm_hit_ratio > 0.9
    assert report.check(min_warm_ratio=0.5,
                        max_first_event_p95=30.0) == []
    assert "loadtest" in report.render()
