"""Regenerate ``golden_stats.json`` after an *intentional* timing change.

    PYTHONPATH=src python tests/golden/regenerate.py

Overwrites ``tests/golden/golden_stats.json`` with the current timing
core's results for the full golden matrix (the exact keys
``tests/integration/test_golden_stats.py`` asserts against). The diff of
that file *is* the behavioural change — it must be explained in review,
never regenerated to silence an unexpected failure. See
``docs/performance.md``.
"""

import json
import sys
from pathlib import Path

from repro.harness.runner import Runner
from repro.minigraph.selectors import (
    SlackProfileSelector, StructAll, StructBounded,
)
from repro.pipeline.config import config_by_name

BENCHMARKS = ("crc32", "dijkstra", "fft", "mcf", "gzip")
CONFIGS = ("reduced", "full")
SELECTORS = {
    "struct-all": StructAll,
    "struct-bounded": StructBounded,
    "slack-profile": SlackProfileSelector,
}
DYNAMIC_BENCHMARKS = ("crc32", "mcf")

OUT = Path(__file__).resolve().parent / "golden_stats.json"


def observed(stats, coverage):
    return {
        "cycles": stats.cycles,
        "ipc": stats.ipc,
        "coverage": coverage,
        "original_committed": stats.original_committed,
        "replays": stats.replays,
        "store_forwards": stats.store_forwards,
        "ordering_violations": stats.ordering_violations,
        "mgt_misses": stats.mgt_misses,
        "fetch_cycles_blocked": stats.fetch_cycles_blocked,
        "icache_stall_cycles": stats.icache_stall_cycles,
        "avg_iq_occupancy": stats.activity.avg_iq_occupancy,
        "avg_window_occupancy": stats.activity.avg_window_occupancy,
    }


def main() -> int:
    runner = Runner()
    golden = {}
    for bench in BENCHMARKS:
        for config_name in CONFIGS:
            config = config_by_name(config_name)
            stats = runner.baseline(bench, config)
            golden[f"{bench}/none/{config_name}"] = observed(stats, 0.0)
            for name, selector in SELECTORS.items():
                run = runner.run_selector(bench, selector(), config)
                golden[f"{bench}/{name}/{config_name}"] = \
                    observed(run.stats, run.stats.coverage)
            print(f"[golden] {bench}/{config_name}", file=sys.stderr)
    for bench in DYNAMIC_BENCHMARKS:
        run = runner.run_slack_dynamic(bench, config_by_name("reduced"))
        golden[f"{bench}/slack-dynamic/reduced"] = \
            observed(run.stats, run.stats.coverage)
    with open(OUT, "w") as handle:
        json.dump(golden, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {OUT} ({len(golden)} points)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
