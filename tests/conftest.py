"""Shared fixtures: small programs and cached harness objects."""

from __future__ import annotations

import pytest

from repro.isa import Assembler
from repro.isa.interp import execute
from repro.harness import Runner
from repro.pipeline import full_config, reduced_config


def build_sum_loop(n: int = 32, name: str = "sumloop"):
    """A simple load/accumulate loop with an aggregable tail."""
    a = Assembler(name)
    buf = a.data_words(list(range(1, n + 1)), label="buf")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")
    a.li("r1", buf)
    a.li("r2", n)
    a.li("r3", 0)
    a.label("loop")
    a.ld("r4", "r1", 0)
    a.slli("r5", "r4", 1)
    a.add("r6", "r5", "r4")
    a.add("r3", "r3", "r6")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "loop")
    a.st("r3", "r0", result)
    a.halt()
    return a.build()


def build_branchy_loop(n: int = 48, name: str = "branchy"):
    """A loop with a data-dependent branch and a serializing pattern."""
    a = Assembler(name)
    buf = a.data_words([(i * 7) % 13 for i in range(n)], label="buf")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")
    a.li("r1", buf)
    a.li("r2", n)
    a.li("r3", 0)
    a.li("r7", 1)
    a.label("loop")
    a.ld("r4", "r1", 0)
    a.andi("r5", "r4", 1)
    a.beq("r5", "r0", "even")
    a.add("r3", "r3", "r4")
    a.jmp("next")
    a.label("even")
    a.xor("r3", "r3", "r4")
    a.label("next")
    a.add("r7", "r7", "r7")
    a.andi("r7", "r7", 255)
    a.or_("r7", "r7", "r5")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "loop")
    a.st("r3", "r0", result)
    a.st("r7", "r0", result)
    a.halt()
    return a.build()


@pytest.fixture(scope="session")
def sum_loop():
    return build_sum_loop()


@pytest.fixture(scope="session")
def branchy_loop():
    return build_branchy_loop()


@pytest.fixture(scope="session")
def sum_trace(sum_loop):
    return execute(sum_loop)


@pytest.fixture(scope="session")
def branchy_trace(branchy_loop):
    return execute(branchy_loop)


@pytest.fixture(scope="session")
def runner():
    """A session-wide caching runner (experiments share all work)."""
    return Runner()


@pytest.fixture(scope="session")
def full_cfg():
    return full_config()


@pytest.fixture(scope="session")
def reduced_cfg():
    return reduced_config()
