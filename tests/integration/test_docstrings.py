"""Quality gate: every public module, class, and function is documented."""

import importlib
import inspect
import pkgutil

import repro


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", "").startswith("repro"):
                yield name, obj


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        yield importlib.import_module(info.name)


def test_all_modules_have_docstrings():
    undocumented = [m.__name__ for m in _walk_modules() if not m.__doc__]
    assert not undocumented, undocumented


def test_all_public_callables_have_docstrings():
    undocumented = []
    for module in _walk_modules():
        for name, obj in _public_members(module):
            if obj.__module__ != module.__name__:
                continue  # re-export; documented at its home
            if not inspect.getdoc(obj):
                undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, undocumented


def test_public_methods_documented_on_key_classes():
    from repro.harness.runner import Runner
    from repro.minigraph.selectors import Selector
    from repro.pipeline.core import OoOCore
    for cls in (Runner, Selector, OoOCore):
        for name, member in vars(cls).items():
            if name.startswith("_") or not inspect.isfunction(member):
                continue
            assert inspect.getdoc(member), f"{cls.__name__}.{name}"
