"""Top-level CLI (`python -m repro`)."""

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["list", "--suites", "comm"]) == 0
    out = capsys.readouterr().out
    assert "crc32" in out and "benchmarks" in out


def test_run_with_selector(capsys):
    assert main(["run", "epicfilt", "--selector", "struct-all"]) == 0
    out = capsys.readouterr().out
    assert "no mini-graphs" in out
    assert "struct-all" in out
    assert "coverage" in out


def test_run_baseline_only(capsys):
    assert main(["run", "epicfilt", "--selector", "none"]) == 0
    out = capsys.readouterr().out
    assert "no mini-graphs" in out


def test_trace(capsys):
    assert main(["trace", "epicfilt", "--last", "8"]) == 0
    out = capsys.readouterr().out
    assert "cycles" in out
    assert "F" in out


def test_trace_with_minigraphs(capsys):
    assert main(["trace", "epicfilt", "--selector", "struct-all",
                 "--last", "12"]) == 0
    out = capsys.readouterr().out
    assert "mg#" in out


def test_validate_single(capsys):
    assert main(["validate", "crc32"]) == 0
    assert "crc32" in capsys.readouterr().out


def test_limit_study_capped(capsys):
    assert main(["limit-study", "--cap", "8"]) == 0
    out = capsys.readouterr().out
    assert "FIG8" in out


def test_experiments_forwarding(capsys):
    assert main(["experiments", "fig1", "--suites", "comm",
                 "--limit", "2"]) == 0
    assert "FIG1" in capsys.readouterr().out


def test_unknown_command():
    with pytest.raises(SystemExit):
        main(["bogus"])
