"""Top-level CLI (`python -m repro`)."""

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["list", "--suites", "comm"]) == 0
    out = capsys.readouterr().out
    assert "crc32" in out and "benchmarks" in out


def test_run_with_selector(capsys):
    assert main(["run", "epicfilt", "--selector", "struct-all"]) == 0
    out = capsys.readouterr().out
    assert "no mini-graphs" in out
    assert "struct-all" in out
    assert "coverage" in out


def test_run_baseline_only(capsys):
    assert main(["run", "epicfilt", "--selector", "none"]) == 0
    out = capsys.readouterr().out
    assert "no mini-graphs" in out


def test_trace(capsys):
    assert main(["trace", "epicfilt", "--last", "8"]) == 0
    out = capsys.readouterr().out
    assert "cycles" in out
    assert "F" in out


def test_trace_with_minigraphs(capsys):
    assert main(["trace", "epicfilt", "--selector", "struct-all",
                 "--last", "12"]) == 0
    out = capsys.readouterr().out
    assert "mg#" in out


def test_validate_single(capsys):
    assert main(["validate", "crc32"]) == 0
    assert "crc32" in capsys.readouterr().out


def test_limit_study_capped(capsys):
    assert main(["limit-study", "--cap", "8"]) == 0
    out = capsys.readouterr().out
    assert "FIG8" in out


def test_experiments_forwarding(capsys):
    assert main(["experiments", "fig1", "--suites", "comm",
                 "--limit", "2"]) == 0
    assert "FIG1" in capsys.readouterr().out


def test_experiments_cache_dir_and_json(capsys, tmp_path):
    cache = str(tmp_path / "cache")
    out_json = str(tmp_path / "fig1.json")
    argv = ["experiments", "fig1", "--suites", "comm", "--limit", "2",
            "--cache-dir", cache, "--save-json", out_json]
    assert main(list(argv)) == 0
    first = (tmp_path / "fig1.json").read_text()
    capsys.readouterr()
    # Second run is served from the artifact store, byte-identically.
    assert main(list(argv)) == 0
    err = capsys.readouterr().err
    assert (tmp_path / "fig1.json").read_text() == first
    assert "100.0%" in err


def test_limit_study_jobs(capsys, tmp_path):
    assert main(["limit-study", "--cap", "8", "--jobs", "2",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    assert "FIG8" in capsys.readouterr().out


def test_cache_subcommand(capsys, tmp_path):
    cache = str(tmp_path / "cache")
    assert main(["run", "crc32", "--selector", "none",
                 "--cache-dir", cache]) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", cache]) == 0
    out = capsys.readouterr().out
    assert "trace" in out and "baseline" in out
    assert main(["cache", "prune", "--cache-dir", cache,
                 "--kinds", "trace"]) == 0
    assert main(["cache", "clear", "--cache-dir", cache]) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", cache]) == 0
    assert "total              0" in capsys.readouterr().out


def test_cache_requires_directory(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert main(["cache", "stats"]) == 1


def test_unknown_command():
    with pytest.raises(SystemExit):
        main(["bogus"])


def test_error_exit_is_one_line_not_traceback(capsys):
    assert main(["run", "nosuchbench"]) == 2
    captured = capsys.readouterr()
    assert captured.err.startswith("repro: error:")
    assert "Traceback" not in captured.err


def test_fuzz_error_exit_on_bad_duration(capsys):
    assert main(["fuzz", "--budget", "soon"]) == 2
    assert capsys.readouterr().err.startswith("repro: error:")


def test_fuzz_smoke(capsys):
    assert main(["fuzz", "--budget", "3s", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "no divergences" in out
    assert "6 selectors" in out
    assert "read-port" in out


def test_fuzz_bounded_by_programs(capsys):
    assert main(["fuzz", "--budget", "10m", "--programs", "2",
                 "--selectors", "struct-all", "struct-none"]) == 0
    out = capsys.readouterr().out
    assert "2 programs" in out
    assert "4 (program, selector) checks" in out


def test_fuzz_replay(capsys):
    assert main(["fuzz", "--replay", "0"]) == 0
    assert "no failure" in capsys.readouterr().out


def test_fuzz_unknown_selector(capsys):
    assert main(["fuzz", "--selectors", "struct-everything"]) == 2
    assert "unknown selector" in capsys.readouterr().err


def test_lint_plan_clean(capsys):
    assert main(["lint-plan", "crc32", "--selector", "struct-all"]) == 0
    out = capsys.readouterr().out
    assert "crc32/struct-all: OK" in out
    assert "sites" in out


def test_gen_requires_seed_and_prints_listing(capsys):
    assert main(["gen", "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "seed 5" in out
    assert "halt" in out


def test_gen_pinned_parameters(capsys):
    assert main(["gen", "--seed", "5", "--profile", "branchy",
                 "--trips", "4", "--array-sizes", "16"]) == 0
    capsys.readouterr()
    with pytest.raises(SystemExit):
        main(["gen"])  # --seed is mandatory: reproducers must be exact


def test_gen_rejects_bad_array_size(capsys):
    assert main(["gen", "--seed", "5", "--array-sizes", "17"]) == 2
    assert capsys.readouterr().err.startswith("repro: error:")


def test_experiments_check_flag(capsys, tmp_path):
    assert main(["experiments", "fig1", "--suites", "comm",
                 "--limit", "1", "--check",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    assert "FIG1" in capsys.readouterr().out


def test_metrics_json_validates(capsys):
    import json
    assert main(["metrics", "crc32", "--selector", "struct-all"]) == 0
    doc = json.loads(capsys.readouterr().out)
    from repro.obs.metrics import validate_metrics
    validate_metrics(doc)
    names = {m["name"] for m in doc["metrics"]}
    assert {"core.cycles", "core.mg_serialized_instances",
            "activity.fetch_slots", "cache.il1.accesses",
            "branch.cond_predictions", "store.misses"} <= names


def test_metrics_prometheus_and_out_file(capsys, tmp_path):
    out = tmp_path / "metrics.prom"
    assert main(["metrics", "crc32", "--format", "prom",
                 "--out", str(out)]) == 0
    assert "wrote" in capsys.readouterr().out
    text = out.read_text()
    assert "# TYPE core_cycles counter" in text


def test_metrics_unknown_benchmark_is_one_line_error(capsys):
    assert main(["metrics", "nosuchbench"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("repro: error:")
    assert "Traceback" not in err


def test_attribution_table(capsys):
    assert main(["attribution", "--benchmarks", "crc32",
                 "--selectors", "struct-all", "slack-profile"]) == 0
    out = capsys.readouterr().out
    assert "pred-ser%" in out and "obs-ser%" in out
    assert "struct-all" in out and "slack-profile" in out
    assert "TOTAL" in out


def test_attribution_unknown_selector_is_one_line_error(capsys):
    assert main(["attribution", "--benchmarks", "crc32",
                 "--selectors", "slack-psychic"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("repro: error:")
    assert "unknown selector" in err


def test_telemetry_validates_experiments_output(capsys, tmp_path):
    trace = tmp_path / "trace.jsonl"
    assert main(["experiments", "fig1", "--suites", "comm", "--limit", "1",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--telemetry", str(trace)]) == 0
    captured = capsys.readouterr()
    assert "[telemetry]" in captured.err
    assert main(["telemetry", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "OK" in out and "manifest: git" in out
    assert "runner=" in out


def test_telemetry_rejects_corrupt_file(capsys, tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"name": "e", "cat": "c", "ph": "i", "ts": 0}\n')
    assert main(["telemetry", str(bad)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("repro: error:")
    assert "manifest" in err


def test_telemetry_missing_file_is_one_line_error(capsys, tmp_path):
    assert main(["telemetry", str(tmp_path / "absent.jsonl")]) == 2
    assert capsys.readouterr().err.startswith("repro: error:")


def test_bench_quick_with_telemetry(capsys, tmp_path):
    trace = tmp_path / "bench.jsonl"
    assert main(["bench", "--quick", "--label", "clitest",
                 "--out", str(tmp_path),
                 "--telemetry", str(trace)]) == 0
    capsys.readouterr()
    import json
    report = json.loads((tmp_path / "BENCH_clitest.json").read_text())
    assert report["manifest"]["git_sha"]
    assert report["manifest"]["config_digest"]
    assert main(["telemetry", str(trace)]) == 0
    assert "bench=" in capsys.readouterr().out
