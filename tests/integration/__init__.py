"""Test package."""
