"""Golden-statistics regression gate for the timing core.

``tests/golden/golden_stats.json`` holds the exact simulated results —
cycles, IPC, coverage, and a spread of secondary counters — produced by
the timing core for a benchmark × selector × machine matrix *before* the
event-driven rewrite (PR 3). The timing model is deterministic, so every
value must reproduce byte-for-byte: any drift means a perf optimisation
changed simulated behaviour, which is a correctness bug here, never
noise.

To intentionally change the timing model, regenerate the file (see
``docs/performance.md``) and account for the diff in review.
"""

import json
from pathlib import Path

import pytest

from repro.harness.runner import Runner
from repro.minigraph.selectors import (
    SlackProfileSelector, StructAll, StructBounded,
)
from repro.pipeline.config import config_by_name

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "golden" / \
    "golden_stats.json"

_SELECTORS = {
    "struct-all": StructAll,
    "struct-bounded": StructBounded,
    "slack-profile": SlackProfileSelector,
}


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def runner():
    return Runner()


def _observed(stats, coverage):
    return {
        "cycles": stats.cycles,
        "ipc": stats.ipc,
        "coverage": coverage,
        "original_committed": stats.original_committed,
        "replays": stats.replays,
        "store_forwards": stats.store_forwards,
        "ordering_violations": stats.ordering_violations,
        "mgt_misses": stats.mgt_misses,
        "fetch_cycles_blocked": stats.fetch_cycles_blocked,
        "icache_stall_cycles": stats.icache_stall_cycles,
        "avg_iq_occupancy": stats.activity.avg_iq_occupancy,
        "avg_window_occupancy": stats.activity.avg_window_occupancy,
    }


def _check(golden, key, observed):
    want = golden[key]
    got = {name: observed[name] for name in want}
    assert got == want, f"{key}: timing results drifted from golden file"


@pytest.mark.parametrize("bench", ["crc32", "dijkstra", "fft", "mcf",
                                   "gzip"])
@pytest.mark.parametrize("config_name", ["reduced", "full"])
def test_baseline_matches_golden(golden, runner, bench, config_name):
    stats = runner.baseline(bench, config_by_name(config_name))
    _check(golden, f"{bench}/none/{config_name}", _observed(stats, 0.0))


@pytest.mark.parametrize("bench", ["crc32", "dijkstra", "fft", "mcf",
                                   "gzip"])
@pytest.mark.parametrize("config_name", ["reduced", "full"])
@pytest.mark.parametrize("selector", sorted(_SELECTORS))
def test_selector_matches_golden(golden, runner, bench, config_name,
                                 selector):
    run = runner.run_selector(bench, _SELECTORS[selector](),
                              config_by_name(config_name))
    _check(golden, f"{bench}/{selector}/{config_name}",
           _observed(run.stats, run.stats.coverage))


@pytest.mark.parametrize("bench", ["crc32", "mcf"])
def test_slack_dynamic_matches_golden(golden, runner, bench):
    run = runner.run_slack_dynamic(bench, config_by_name("reduced"))
    _check(golden, f"{bench}/slack-dynamic/reduced",
           _observed(run.stats, run.stats.coverage))


def test_golden_file_fully_covered(golden):
    """Every golden point is exercised by a test above (no dead entries)."""
    expected = set()
    for bench in ("crc32", "dijkstra", "fft", "mcf", "gzip"):
        for config_name in ("reduced", "full"):
            expected.add(f"{bench}/none/{config_name}")
            for selector in _SELECTORS:
                expected.add(f"{bench}/{selector}/{config_name}")
    for bench in ("crc32", "mcf"):
        expected.add(f"{bench}/slack-dynamic/reduced")
    assert set(golden) == expected
