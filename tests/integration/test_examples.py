"""The shipped examples must run and tell their stories."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(script, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "reduced + mini-graphs" in out
    assert "coverage" in out


def test_selector_comparison():
    out = _run("selector_comparison.py", "epicfilt")
    for name in ("struct-all", "struct-none", "struct-bounded",
                 "slack-profile", "slack-dynamic"):
        assert name in out


def test_custom_workload():
    out = _run("custom_workload.py")
    assert "verdict" in out
    assert "accept" in out or "reject" in out


def test_dynamic_disabling():
    out = _run("dynamic_disabling.py", "crc32")
    assert "slack-dynamic" in out
    assert "disabled-instances=" in out


def test_amplification_report():
    out = _run("amplification_report.py", "epicfilt")
    assert "reduction" in out
    assert "code motion" in out
