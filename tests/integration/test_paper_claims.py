"""End-to-end checks of the paper's qualitative claims on a small
population (the benchmarks regenerate the full figures; these tests pin
the *shape* results so regressions surface in CI time)."""

import pytest

from repro.harness import Runner
from repro.harness.scurve import SCurve, relative
from repro.minigraph import (
    SlackProfileSelector, StructAll, StructBounded, StructNone,
)
from repro.pipeline import full_config, reduced_config
from repro.workloads import all_benchmarks


POPULATION = ["adpcm", "crc32", "drr", "epicfilt", "g721quant", "gzip",
              "ipchk", "bzip2"]


@pytest.fixture(scope="module")
def shared_runner():
    return Runner()


@pytest.fixture(scope="module")
def data(shared_runner):
    """All selector runs for the test population on both machines."""
    runner = shared_runner
    full, reduced = full_config(), reduced_config()
    selectors = {
        "struct-all": StructAll(),
        "struct-none": StructNone(),
        "struct-bounded": StructBounded(),
        "slack-profile": SlackProfileSelector(),
    }
    out = {"base_full": {}, "base_reduced": {}, "runs": {}}
    for name in POPULATION:
        out["base_full"][name] = runner.baseline(name, full).ipc
        out["base_reduced"][name] = runner.baseline(name, reduced).ipc
        for sel_name, selector in selectors.items():
            for config in (full, reduced):
                run = runner.run_selector(name, selector, config)
                out["runs"][(name, sel_name, config.name)] = run
    return out


def _curve(data, selector, config):
    values = {name: data["runs"][(name, selector, config)].ipc
              for name in POPULATION}
    return SCurve(selector, relative(values, data["base_full"]))


def test_reduced_machine_loses_performance(data):
    """§3.2: the reduced configuration alone is substantially slower."""
    rel = [data["base_reduced"][n] / data["base_full"][n]
           for n in POPULATION]
    assert sum(rel) / len(rel) < 0.97
    assert all(r <= 1.01 for r in rel)


def test_struct_all_coverage_dominates_struct_none(data):
    """§3.2: Struct-All has much higher coverage (paper: 38% vs 20%;
    the exact ratio depends on the candidate population, so assert a
    clear gap rather than the paper's 2×)."""
    cov_all = [data["runs"][(n, "struct-all", "reduced")].coverage
               for n in POPULATION]
    cov_none = [data["runs"][(n, "struct-none", "reduced")].coverage
                for n in POPULATION]
    assert sum(cov_all) > 1.25 * sum(cov_none)
    for a, n in zip(cov_all, cov_none):
        assert a >= n - 1e-9


def test_struct_bounded_coverage_between(data):
    for name in POPULATION:
        bounded = data["runs"][(name, "struct-bounded", "reduced")].coverage
        allc = data["runs"][(name, "struct-all", "reduced")].coverage
        nonec = data["runs"][(name, "struct-none", "reduced")].coverage
        assert nonec - 1e-9 <= bounded <= allc + 1e-9


def test_struct_none_never_below_no_minigraphs(data):
    """§3.2: Struct-None always outperforms the reduced machine alone."""
    for name in POPULATION:
        run = data["runs"][(name, "struct-none", "reduced")]
        assert run.ipc >= data["base_reduced"][name] * 0.99


def test_struct_all_hurts_someone_on_full_machine(data):
    """§3.2: Struct-All degrades a good fraction of programs on the fully
    provisioned machine, where serialization is exposed."""
    losses = [name for name in POPULATION
              if data["runs"][(name, "struct-all", "full")].ipc
              < data["base_full"][name] * 0.995]
    assert losses, "expected at least one serialization victim"


def test_slack_profile_mean_dominates_naive(data):
    slack = _curve(data, "slack-profile", "reduced")
    struct_all = _curve(data, "struct-all", "reduced")
    struct_none = _curve(data, "struct-none", "reduced")
    assert slack.mean >= struct_all.mean - 1e-9
    assert slack.mean >= struct_none.mean - 1e-9


def test_slack_profile_rarely_below_no_minigraphs(data):
    bad = [name for name in POPULATION
           if data["runs"][(name, "slack-profile", "reduced")].ipc
           < data["base_reduced"][name] * 0.98]
    assert len(bad) <= 1


def test_slack_profile_on_full_machine_never_catastrophic(data):
    """§5.1: on the full machine Slack-Profile avoids the Struct-All
    pathologies (its minimum is far better)."""
    slack = _curve(data, "slack-profile", "full")
    struct_all = _curve(data, "struct-all", "full")
    assert slack.minimum >= struct_all.minimum - 1e-9


def test_amplification_recovers_reduction_for_someone(data):
    """At least one program beats the full baseline with mini-graphs on
    the reduced machine (right side of Figure 1)."""
    winners = [name for name in POPULATION
               if data["runs"][(name, "slack-profile", "reduced")].ipc
               > data["base_full"][name]]
    assert winners
