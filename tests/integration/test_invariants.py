"""Cross-cutting property tests over the whole flow.

These use the synthetic generator as a program fuzzer: for arbitrary
seeds, the full pipeline (trace → candidates → selection → fold → timing)
must preserve its accounting and legality invariants.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.interp import execute
from repro.minigraph import (
    SerializationClass, StructAll, enumerate_candidates, fold_trace,
    make_plan,
)
from repro.minigraph.dataflow import liveness
from repro.pipeline import reduced_config
from repro.pipeline.core import OoOCore
from repro.workloads.generator import synth_builder

SEEDS = st.integers(min_value=100, max_value=160)


@given(seed=SEEDS)
@settings(max_examples=10, deadline=None)
def test_candidate_legality(seed):
    program = synth_builder(seed)("train")
    live = liveness(program)
    for candidate in enumerate_candidates(program, live_out_sets=live):
        # Interface limits.
        assert 2 <= candidate.size <= 4
        assert len(candidate.ext_inputs) <= 3
        mems = sum(1 for i in candidate.instructions() if i.is_memory)
        assert mems <= 1
        # Confined to one basic block.
        block = program.block_of(candidate.start)
        assert candidate.end <= block.end
        # Interior values must be dead after the group.
        live_after = live[candidate.end - 1]
        written = {i.rd for i in candidate.instructions() if i.writes_reg}
        live_written = written & set(live_after)
        assert len(live_written) <= 1
        if candidate.output:
            assert live_written == {candidate.out_reg}


@given(seed=SEEDS)
@settings(max_examples=8, deadline=None)
def test_fold_conserves_instructions(seed):
    program = synth_builder(seed)("train")
    trace = execute(program, max_insts=500_000)
    plan = make_plan(program, trace.dynamic_count_of(), StructAll())
    records = fold_trace(trace, plan)
    total = sum(len(r.constituents) if r.kind == 1 else 1 for r in records)
    assert total == len(trace.records)


@given(seed=st.integers(min_value=100, max_value=130))
@settings(max_examples=5, deadline=None)
def test_timing_commits_everything(seed):
    program = synth_builder(seed)("train")
    trace = execute(program, max_insts=500_000)
    plan = make_plan(program, trace.dynamic_count_of(), StructAll())
    records = fold_trace(trace, plan)
    stats = OoOCore(reduced_config(), records, warm_caches=True).run()
    assert stats.original_committed == len(trace.records)
    assert 0.0 <= stats.coverage <= 1.0
    # Original-instruction IPC may exceed machine width (amplification!),
    # but commit *slots* are bounded by the commit width.
    assert stats.slots_committed / stats.cycles <= reduced_config().width


@given(seed=st.integers(min_value=100, max_value=130))
@settings(max_examples=5, deadline=None)
def test_serialization_classification_total(seed):
    program = synth_builder(seed)("train")
    for candidate in enumerate_candidates(program):
        assert candidate.serialization in (
            SerializationClass.NONE, SerializationClass.BOUNDED,
            SerializationClass.UNBOUNDED)
        if not candidate.is_potentially_serializing:
            # Shape-safe: every external input feeds the first constituent.
            assert all(off == 0 for _, off, _ in candidate.ext_inputs)
