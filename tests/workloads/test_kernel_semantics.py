"""Kernel semantics cross-checked against Python reference models.

With ``capture_memory=True`` the interpreter exposes the final memory
image, so kernels can be verified value-for-value against straightforward
Python implementations of the same algorithm.
"""



from repro.isa.interp import execute
from repro.workloads import benchmark


def _final_memory(name, input_name="train"):
    program = benchmark(name).program(input_name)
    trace = execute(program, max_insts=500_000, capture_memory=True)
    return program, trace.final_memory


def test_crc32_matches_reference():
    program, memory = _final_memory("crc32")
    table = program.data[:256]
    message = program.data[256:-1]
    crc = 0xFFFFFFFF
    for byte in message:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    result_addr = len(program.data) - 1
    assert memory[result_addr] == crc


def test_qsort_output_is_sorted():
    program, memory = _final_memory("qsort")
    n = 56
    original = program.data[:n]
    final = memory[:n]
    assert final == sorted(original)


def test_gap_permutation_composition():
    program, memory = _final_memory("gap")
    size, rounds = 32, 12
    pa = program.data[:size]
    pb = program.data[size:2 * size]
    work = list(range(size))
    for _ in range(rounds):
        work = [pb[pa[value]] for value in work]
    # The kernel's work[] region is the third array.
    assert memory[2 * size:3 * size] == work


def test_ipchk_ones_complement():
    program, memory = _final_memory("ipchk")
    packets, words = 70, 10
    headers = program.data[:packets * words]
    checksum = 0
    for p in range(packets):
        total = 0
        for w in range(words):
            total += headers[p * words + w]
            total = (total & 0xFFFF) + (total >> 16)
        checksum ^= total ^ 0xFFFF
    assert memory[len(program.data) - 1] == checksum


def test_tiffdither_bits_match():
    program, memory = _final_memory("tiffdither")
    n = 360
    pixels = program.data[:n]
    error = 0
    out = []
    for value in pixels:
        value += error
        if value < 128:
            bit, err = 0, value
        else:
            bit, err = 1, value - 255
        error = err >> 1   # Python's >> floors like srai
        out.append(bit)
    assert memory[n:2 * n] == out


def test_bzip2_mtf_front_is_last_symbol():
    program, memory = _final_memory("bzip2")
    n = 220
    stream = program.data[:n]
    mtf_base = n
    assert memory[mtf_base] == stream[-1]   # last symbol moved to front


def test_adpcm_codes_are_4bit():
    program, memory = _final_memory("adpcm")
    n = 160
    codes = memory[n:2 * n]
    assert all(0 <= code <= 15 for code in codes)
    assert len(set(codes)) > 3   # a real signal exercises many codes


def test_tcp_state_machine_matches_model():
    program, memory = _final_memory("tcp")
    transitions = program.data[:16]
    events = program.data[16:16 + 300]
    state = 0
    established = 0
    for event in events:
        state = transitions[state * 4 + event]
        established += state == 2
    assert memory[len(program.data) - 1] == established


def test_dijkstra_distances_are_shortest():
    program, memory = _final_memory("dijkstra")
    nodes, inf = 14, 1 << 20
    adj = program.data[:nodes * nodes]
    import heapq
    dist = [inf] * nodes
    dist[0] = 0
    heap = [(0, 0)]
    seen = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in seen:
            continue
        seen.add(u)
        for v in range(nodes):
            w = adj[u * nodes + v]
            if w < inf and d + w < dist[v]:
                dist[v] = d + w
                heapq.heappush(heap, (d + w, v))
    dist_base = nodes * nodes
    kernel_dist = memory[dist_base:dist_base + nodes]
    # Unreachable nodes keep 'inf'-ish values in both; compare reachable.
    for expected, actual in zip(dist, kernel_dist):
        if expected < inf:
            assert actual == expected
