"""Synthetic program generator invariants."""

import pytest

from repro.isa.interp import execute
from repro.workloads.generator import PROFILES, synth_builder, synth_program
from repro.workloads import benchmark


def test_deterministic_per_seed():
    first = synth_builder(3)("train")
    second = synth_builder(3)("train")
    assert [i.render() for i in first.instructions] == \
        [i.render() for i in second.instructions]


def test_different_seeds_differ():
    a = synth_builder(1)("train")
    b = synth_builder(2)("train")
    assert [i.render() for i in a.instructions] != \
        [i.render() for i in b.instructions]


def test_static_code_identical_across_inputs():
    """Cross-input robustness requires PC-for-PC identical code: only
    data contents and trip-count immediates may differ."""
    train = synth_builder(5)("train")
    ref = synth_builder(5)("ref")
    assert len(train) == len(ref)
    for t, r in zip(train.instructions, ref.instructions):
        assert t.op == r.op
        assert t.rd == r.rd
        assert t.srcs == r.srcs


def test_all_synthetics_terminate():
    for seed in (1, 7, 13, 24):
        program = synth_builder(seed)("train")
        trace = execute(program, max_insts=500_000)
        assert trace.records[-1].opclass == 7


def test_ref_runs_longer_on_average():
    longer = 0
    for seed in range(1, 11):
        train = execute(synth_builder(seed)("train"), max_insts=500_000)
        ref = execute(synth_builder(seed)("ref"), max_insts=500_000)
        longer += len(ref) > len(train)
    assert longer >= 7  # ref scales trip counts by 1.7


def test_memory_accesses_in_bounds():
    """The generator masks indices: no MemoryFault on any seed."""
    for seed in (4, 9, 17, 21):
        execute(synth_builder(seed)("ref"), max_insts=500_000)


def test_population_diversity():
    """Across seeds, branch/memory mixes differ substantially."""
    densities = []
    for seed in range(1, 13):
        trace = execute(synth_builder(seed)("train"), max_insts=500_000)
        branches = sum(1 for r in trace.records if r.opclass == 4)
        loads = sum(1 for r in trace.records if r.is_load)
        densities.append((round(branches / len(trace), 2),
                          round(loads / len(trace), 2)))
    assert len(set(densities)) >= 6


def test_synth_program_defaults_match_builder():
    """The parameterized entry point with no pins is the registered
    benchmark, byte for byte — fuzz seeds and synthNN share one stream."""
    for seed in (1, 6, 19):
        for input_name in ("train", "ref"):
            via_builder = synth_builder(seed)(input_name)
            direct = synth_program(seed, input_name)
            assert direct.listing() == via_builder.listing()
            assert direct.data == via_builder.data


def test_synth_program_pinned_parameters():
    program = synth_program(11, "train", profile="branchy", n_loops=1,
                            trips=4, ops=3, array_sizes=(16,))
    again = synth_program(11, "train", profile="branchy", n_loops=1,
                          trips=4, ops=3, array_sizes=(16,))
    assert program.listing() == again.listing()
    # Pinned trip count keeps the run short.
    assert len(execute(program, max_insts=50_000)) < 10_000


def test_synth_program_partial_pins_are_deterministic():
    a = synth_program(11, "train", trips=8)
    b = synth_program(11, "train", trips=8)
    assert a.listing() == b.listing()
    assert a.listing() != synth_program(11, "train", trips=16).listing()


def test_synth_program_custom_name():
    assert synth_program(2, "train", name="fuzz2").name == "fuzz2"


def test_synth_program_rejects_bad_parameters():
    with pytest.raises(ValueError):
        synth_program(1, "train", profile="chaotic")
    with pytest.raises(ValueError):
        synth_program(1, "train", array_sizes=(17,))
    assert set(PROFILES) == {"compute", "memory", "branchy", "serial"}


def test_registered_in_suite():
    bench = benchmark("synth01")
    assert bench.suite == "synth"
    program = bench.program("train")
    assert len(program) > 10
