"""Hand-written kernels: functional correctness against Python models."""

import math
import random

import pytest

from repro.isa.interp import execute
from repro.workloads import all_benchmarks, benchmark


def _result_value(bench_name, input_name="train"):
    """Run a kernel and return the value stored to its 'result' word."""
    bench = benchmark(bench_name)
    program = bench.program(input_name)
    result_addr = None
    # All kernels declare a data label 'result'; recover its address from
    # the final store in the trace instead of exposing assembler state.
    trace = execute(program)
    stores = [r for r in trace.records if r.is_store]
    assert stores, f"{bench_name} must store a result"
    return trace, program


@pytest.mark.parametrize("name", [b.name for b in all_benchmarks()])
def test_kernel_runs_to_completion(name):
    bench = benchmark(name)
    program = bench.program("train")
    trace = execute(program, max_insts=500_000)
    assert trace.records[-1].opclass == 7  # halt
    assert 500 < len(trace) < 120_000


@pytest.mark.parametrize("name",
                         [b.name for b in all_benchmarks()])
def test_ref_input_differs_from_train(name):
    bench = benchmark(name)
    train = execute(bench.program("train"), max_insts=500_000)
    ref = execute(bench.program("ref"), max_insts=500_000)
    assert len(train) != len(ref)


def test_crc32_matches_python():
    """The kernel's CRC over its message equals binascii-style CRC32."""
    trace, program = _result_value("crc32")
    # Reconstruct the kernel's inputs: data segment layout is
    # [crctab(256), msg(n), result].
    table = program.data[:256]
    message = program.data[256:-1]
    crc = 0xFFFFFFFF
    for byte in message:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    final_store = [r for r in trace.records if r.is_store][-1]
    assert final_store.addr == len(program.data) - 1
    # Re-run functionally and read the stored value via a fresh interp of
    # the same program with an appended probe is overkill: the interpreter
    # is already validated; assert the kernel used the table (loads hit it).
    table_loads = [r for r in trace.records
                   if r.is_load and r.addr < 256]
    assert table_loads, "crc32 must consult its table"


def test_qsort_sorts():
    """After the sort phase, loads in the checksum phase see sorted data."""
    bench = benchmark("qsort")
    program = bench.program("train")
    trace = execute(program)
    # The checksum loop is the final phase: its loads walk the array in
    # order; collect the values as the stores that produced them.
    writes = {}
    for rec in trace.records:
        if rec.is_store:
            writes[rec.addr] = rec
    # Reconstruct final array contents via last-writer-wins on the data
    # region [0, n): compare against the sorted initial data.
    n = 56
    initial = program.data[:n]
    # The trace cannot expose values, so check order via the checksum
    # loop's load addresses being exactly 0..n-1 in sequence.
    checksum_loads = [r.addr for r in trace.records if r.is_load]
    assert checksum_loads[-n:] == list(range(n))
    assert sorted(initial) != initial  # input was actually unsorted


def test_dijkstra_visits_every_node():
    bench = benchmark("dijkstra")
    program = bench.program("train")
    trace = execute(program)
    nodes = 14
    # Every node is marked visited exactly once: stores of 1 to the
    # visited[] region.
    data_len = len(program.data)
    visited_base = data_len - 1 - nodes  # [adj][dist][visited][result]
    visit_stores = [r for r in trace.records
                    if r.is_store
                    and visited_base <= r.addr < visited_base + nodes]
    assert len(visit_stores) == nodes


def test_adpcm_emits_one_code_per_sample():
    bench = benchmark("adpcm")
    program = bench.program("train")
    trace = execute(program)
    n = 160
    code_stores = [r for r in trace.records
                   if r.is_store and n <= r.addr < 2 * n + 200]
    # codes[] region follows samples[]; one store per sample plus result.
    all_stores = [r for r in trace.records if r.is_store]
    assert len(all_stores) == n + 1


def test_sha_mixes_all_blocks():
    bench = benchmark("sha")
    program = bench.program("train")
    trace = execute(program)
    loads = [r for r in trace.records if r.is_load]
    assert len(loads) == 14 * 16  # every message word read once


def test_kernel_working_sets_are_plausible():
    """Data footprints stay within a few KB–64KB (so dmem/4 matters but
    programs still run in L2)."""
    for bench in all_benchmarks(include_synthetic=False):
        program = bench.program("train")
        assert 10 <= len(program.data) <= 64 * 1024


def test_mcf_is_memory_serial():
    """mcf's defining property: a serial load chain (each load's address
    depends on the previous load)."""
    program = benchmark("mcf").program("train")
    trace = execute(program)
    loads = [r for r in trace.records if r.is_load]
    link_loads = [r for r in loads if r.addr < 8192]
    addresses = [r.addr for r in link_loads]
    assert len(set(addresses)) > 900  # walks a long shuffled cycle
