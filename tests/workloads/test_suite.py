"""Benchmark registry and program construction."""

import pytest

from repro.workloads import Benchmark, all_benchmarks, benchmark
from repro.workloads.generator import N_SYNTHETIC


def test_population_size():
    benches = all_benchmarks()
    # 28 hand-written kernels + the synthetic population.
    assert len(benches) >= 24 + N_SYNTHETIC


def test_four_suite_families_present():
    suites = {b.suite for b in all_benchmarks()}
    assert {"spec", "media", "comm", "embedded", "synth"} <= suites


def test_suite_filter():
    media = all_benchmarks(suites=["media"])
    assert media and all(b.suite == "media" for b in media)


def test_exclude_synthetic():
    benches = all_benchmarks(include_synthetic=False)
    assert benches and all(b.suite != "synth" for b in benches)


def test_every_benchmark_has_two_inputs():
    for bench in all_benchmarks():
        assert {"train", "ref"} <= set(bench.inputs)


def test_adpcm_has_tiny_input():
    assert "tiny" in benchmark("adpcm").inputs


def test_lookup_by_name():
    assert benchmark("crc32").name == "crc32"
    with pytest.raises(ValueError):
        benchmark("not-a-benchmark")


def test_program_memoization():
    bench = benchmark("crc32")
    assert bench.program("train") is bench.program("train")


def test_unknown_input_rejected():
    with pytest.raises(ValueError):
        benchmark("crc32").program("huge")


def test_bad_suite_rejected():
    with pytest.raises(ValueError):
        Benchmark("x", "nosuite", lambda i: None)


def test_duplicate_registration_rejected():
    from repro.workloads import register
    with pytest.raises(ValueError):
        register(Benchmark("crc32", "comm", lambda i: None))
