"""Test package."""
