"""S-curve construction and rendering."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness import SCurve, relative, render_scurves, summarize


def test_sorted_worst_to_best():
    curve = SCurve("x", {"a": 0.9, "b": 1.2, "c": 0.7})
    assert curve.sorted_values == [0.7, 0.9, 1.2]


def test_mean_median():
    curve = SCurve("x", {"a": 1.0, "b": 2.0, "c": 6.0})
    assert curve.mean == 3.0
    assert curve.median == 2.0
    even = SCurve("x", {"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0})
    assert even.median == 2.5


def test_min_max_empty():
    empty = SCurve("x", {})
    assert empty.mean == 0.0
    assert empty.median == 0.0
    assert empty.minimum == 0.0
    assert empty.maximum == 0.0


def test_fraction_below():
    curve = SCurve("x", {"a": 0.8, "b": 0.95, "c": 1.1, "d": 1.3})
    assert curve.fraction_below(1.0) == 0.5
    assert curve.fraction_below(0.5) == 0.0
    assert curve.fraction_below(2.0) == 1.0


def test_crossover_detection():
    a = SCurve("a", {"p": 0.5, "q": 2.0})
    b = SCurve("b", {"p": 1.0, "q": 1.1})
    assert a.crossover_with(b)
    dominant = SCurve("d", {"p": 2.0, "q": 3.0})
    assert not dominant.crossover_with(b)


def test_relative():
    values = {"a": 2.0, "b": 3.0, "c": 4.0}
    baselines = {"a": 4.0, "b": 3.0}
    rel = relative(values, baselines)
    assert rel == {"a": 0.5, "b": 1.0}   # c dropped (no baseline)


def test_render_contains_all_rows():
    curves = [SCurve("one", {"a": 1.0, "b": 2.0}),
              SCurve("two", {"a": 3.0})]
    text = render_scurves(curves, title="demo")
    assert "demo" in text
    assert "one" in text and "two" in text
    assert "mean" in text and "med" in text


def test_summarize_format():
    text = summarize([SCurve("curve-name", {"a": 1.0})])
    assert "curve-name" in text
    assert "1.000" in text


@given(st.dictionaries(st.text(min_size=1, max_size=6),
                       st.floats(min_value=0.01, max_value=10.0),
                       min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_scurve_properties(values):
    curve = SCurve("x", values)
    assert len(curve) == len(values)
    eps = 1e-9
    assert curve.minimum <= curve.median + eps
    assert curve.median <= curve.maximum + eps
    assert curve.minimum - eps <= curve.mean <= curve.maximum + eps
    assert curve.sorted_values == sorted(curve.sorted_values)


@given(st.dictionaries(st.sampled_from("abcdefgh"),
                       st.floats(min_value=0.1, max_value=2.0),
                       min_size=2, max_size=8))
@settings(max_examples=30, deadline=None)
def test_crossover_symmetric(values):
    import random
    shuffled = {k: v * random.Random(1).uniform(0.5, 1.5)
                for k, v in values.items()}
    a = SCurve("a", values)
    b = SCurve("b", shuffled)
    assert a.crossover_with(b) == b.crossover_with(a)
