"""Terminal plots and the optional matplotlib (Agg) PNG export."""

import pytest

from repro.harness.plot import (
    plot_scatter, plot_scurves, save_scatter_png, save_scurve_png,
)
from repro.harness.scurve import SCurve

try:
    import matplotlib  # noqa: F401
    HAVE_MPL = True
except ImportError:
    HAVE_MPL = False


def _curves():
    return [
        SCurve("alpha", {f"p{i}": 0.7 + i * 0.05 for i in range(10)}),
        SCurve("beta", {f"p{i}": 0.9 + i * 0.02 for i in range(10)}),
    ]


def test_scurve_plot_contains_markers_and_legend():
    text = plot_scurves(_curves(), title="demo")
    assert "demo" in text
    assert "o alpha" in text
    assert "x beta" in text
    body = [line for line in text.splitlines() if "|" in line]
    assert any("o" in line for line in body)  # markers plotted somewhere
    assert any("x" in line for line in body)


def test_reference_line_drawn():
    text = plot_scurves(_curves(), reference=1.0)
    assert any(line.count("-") > 30 for line in text.splitlines())


def test_plot_dimensions():
    text = plot_scurves(_curves(), width=40, height=10)
    body = [line for line in text.splitlines() if "|" in line]
    assert len(body) == 10
    assert all(len(line) <= 8 + 1 + 40 for line in body)


def test_empty_curves():
    assert plot_scurves([]) == "(no data)"
    assert plot_scatter([]) == "(no data)"


def test_scatter_highlights():
    points = [(i / 10, 0.8 + i / 50) for i in range(10)]
    text = plot_scatter(points, highlights={"best": (0.5, 1.0)},
                        title="scatter")
    assert "scatter" in text
    assert "o best" in text
    assert "." in text


def test_single_value_degenerate_ranges():
    curve = SCurve("one", {"p": 1.0})
    text = plot_scurves([curve])
    assert "one" in text
    text2 = plot_scatter([(0.5, 0.5)])
    assert "|" in text2


def test_png_export_no_data_raises(tmp_path):
    with pytest.raises(ValueError, match="no data"):
        save_scurve_png([], tmp_path / "x.png")
    with pytest.raises(ValueError, match="no data"):
        save_scatter_png([], tmp_path / "x.png")


@pytest.mark.skipif(HAVE_MPL, reason="matplotlib installed; gate inactive")
def test_png_export_gated_without_matplotlib(tmp_path):
    """Missing matplotlib degrades to a one-line ValueError, not a crash."""
    with pytest.raises(ValueError, match="matplotlib is not installed"):
        save_scurve_png(_curves(), tmp_path / "s.png")
    with pytest.raises(ValueError, match="matplotlib is not installed"):
        save_scatter_png([(0.1, 0.9)], tmp_path / "s.png",
                         highlights={"best": (0.5, 1.0)})


@pytest.mark.skipif(not HAVE_MPL, reason="matplotlib not installed")
def test_png_export_writes_files_headless(tmp_path):
    """With matplotlib present, Agg renders PNGs with no display."""
    scurve_path = save_scurve_png(_curves(), tmp_path / "scurve.png",
                                  title="demo", reference=1.0)
    scatter_path = save_scatter_png(
        [(i / 10, 0.8 + i / 50) for i in range(10)],
        tmp_path / "scatter.png", highlights={"best": (0.5, 1.0)},
        title="fig8")
    for path in (scurve_path, scatter_path):
        data = open(path, "rb").read()
        assert data[:8] == b"\x89PNG\r\n\x1a\n"
