"""Test package."""
