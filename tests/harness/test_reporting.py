"""Result serialization and Markdown rendering."""

import pytest

from repro.harness.experiments import ExperimentResult
from repro.harness.reporting import (
    dict_to_experiment, experiment_from_dict, experiment_to_dict,
    load_experiment, load_results, markdown_table, save_results,
)
from repro.harness.scurve import SCurve


def _sample_result():
    result = ExperimentResult("FIGX demo")
    result.groups["performance"] = [
        SCurve("alpha", {"p1": 0.9, "p2": 1.1}),
        SCurve("beta", {"p1": 1.0, "p2": 1.0}),
    ]
    result.notes.append("a note")
    return result


def test_roundtrip_via_dict():
    result = _sample_result()
    payload = experiment_to_dict(result)
    back = dict_to_experiment(payload)
    assert back.name == result.name
    assert back.notes == result.notes
    original = result.groups["performance"][0]
    restored = back.groups["performance"][0]
    assert restored.by_program == original.by_program
    assert restored.mean == original.mean


def test_save_and_load(tmp_path):
    results = [_sample_result()]
    path = save_results(results, tmp_path / "results.json")
    assert path.exists()
    loaded = load_results(path)
    assert len(loaded) == 1
    assert loaded[0].name == "FIGX demo"
    curve = loaded[0].groups["performance"][1]
    assert curve.by_program == {"p1": 1.0, "p2": 1.0}


def test_markdown_table():
    text = markdown_table(_sample_result(), "performance")
    assert "| alpha |" in text
    assert "| beta |" in text
    assert "| 1.000 |" in text


def test_dict_is_json_serializable():
    import json
    payload = experiment_to_dict(_sample_result())
    json.dumps(payload)


def test_experiment_from_dict_full_roundtrip():
    result = _sample_result()
    back = experiment_from_dict(experiment_to_dict(result))
    assert back.name == result.name
    assert back.notes == result.notes
    assert list(back.groups) == list(result.groups)
    for group, curves in result.groups.items():
        restored = back.groups[group]
        assert [c.label for c in restored] == [c.label for c in curves]
        for original, copy in zip(curves, restored):
            assert copy.by_program == original.by_program
            assert copy.mean == original.mean
            assert copy.median == original.median
            assert copy.minimum == original.minimum
            assert copy.maximum == original.maximum
    # The alias remains the same callable.
    assert dict_to_experiment is experiment_from_dict


def test_load_experiment_single(tmp_path):
    path = save_results([_sample_result()], tmp_path / "one.json")
    result = load_experiment(path)
    assert result.name == "FIGX demo"
    assert load_experiment(path, "FIGX demo").name == "FIGX demo"


def test_load_experiment_by_name(tmp_path):
    second = _sample_result()
    second.name = "FIGY other"
    path = save_results([_sample_result(), second], tmp_path / "two.json")
    assert load_experiment(path, "FIGY other").name == "FIGY other"
    with pytest.raises(ValueError):
        load_experiment(path)  # ambiguous without a name
    with pytest.raises(KeyError):
        load_experiment(path, "FIGZ missing")
