"""Result serialization and Markdown rendering."""

from repro.harness.experiments import ExperimentResult
from repro.harness.reporting import (
    dict_to_experiment, experiment_to_dict, load_results, markdown_table,
    save_results,
)
from repro.harness.scurve import SCurve


def _sample_result():
    result = ExperimentResult("FIGX demo")
    result.groups["performance"] = [
        SCurve("alpha", {"p1": 0.9, "p2": 1.1}),
        SCurve("beta", {"p1": 1.0, "p2": 1.0}),
    ]
    result.notes.append("a note")
    return result


def test_roundtrip_via_dict():
    result = _sample_result()
    payload = experiment_to_dict(result)
    back = dict_to_experiment(payload)
    assert back.name == result.name
    assert back.notes == result.notes
    original = result.groups["performance"][0]
    restored = back.groups["performance"][0]
    assert restored.by_program == original.by_program
    assert restored.mean == original.mean


def test_save_and_load(tmp_path):
    results = [_sample_result()]
    path = save_results(results, tmp_path / "results.json")
    assert path.exists()
    loaded = load_results(path)
    assert len(loaded) == 1
    assert loaded[0].name == "FIGX demo"
    curve = loaded[0].groups["performance"][1]
    assert curve.by_program == {"p1": 1.0, "p2": 1.0}


def test_markdown_table():
    text = markdown_table(_sample_result(), "performance")
    assert "| alpha |" in text
    assert "| beta |" in text
    assert "| 1.000 |" in text


def test_dict_is_json_serializable():
    import json
    payload = experiment_to_dict(_sample_result())
    json.dumps(payload)
