"""Small-scale runs of the heavier experiment drivers (fig6/fig7/fig9)."""

import pytest

from repro.harness import Runner
from repro.harness.experiments import fig6, fig7, fig8, fig9_machines
from repro.workloads import all_benchmarks


@pytest.fixture(scope="module")
def tiny_population():
    return all_benchmarks(suites=["media"])[:3]


@pytest.fixture(scope="module")
def shared_runner():
    return Runner()


def test_fig6_groups_and_labels(shared_runner, tiny_population):
    result = fig6(shared_runner, tiny_population)
    assert set(result.groups) == {
        "performance on reduced (rel. full baseline)",
        "performance on full (rel. full baseline)",
        "coverage",
    }
    reduced = result.groups["performance on reduced (rel. full baseline)"]
    labels = [c.label for c in reduced]
    assert labels == ["no-mini-graphs", "struct-all", "struct-none",
                      "struct-bounded", "slack-profile", "slack-dynamic"]
    for curve in reduced:
        assert len(curve) == len(tiny_population)


def test_fig6_coverage_bounds(shared_runner, tiny_population):
    result = fig6(shared_runner, tiny_population)
    for curve in result.groups["coverage"]:
        assert 0.0 <= curve.minimum and curve.maximum <= 1.0


def test_fig7_variant_labels(shared_runner, tiny_population):
    result = fig7(shared_runner, tiny_population)
    profile = result.groups["slack-profile breakdown (reduced)"]
    assert [c.label for c in profile] == [
        "struct-all", "struct-none", "slack-profile-sial",
        "slack-profile-delay", "slack-profile"]
    dynamic = result.groups["slack-dynamic breakdown (reduced)"]
    assert [c.label for c in dynamic] == [
        "slack-dynamic", "ideal-slack-dynamic",
        "ideal-slack-dynamic-delay", "ideal-slack-dynamic-sial"]


def test_fig9_machines_four_trainers(shared_runner, tiny_population):
    result = fig9_machines(shared_runner, tiny_population)
    curves = next(iter(result.groups.values()))
    assert [c.label for c in curves] == [
        "self (reduced)", "cross 2-way", "cross 8-way", "cross dmem/4"]
    assert len(result.notes) == 3


def test_fig8_driver_wraps_limit_study(shared_runner, tiny_population,
                                       monkeypatch):
    # Cap the sweep so the driver test stays fast.
    import repro.analysis.limit_study as ls
    original = ls.run_limit_study

    def capped(runner=None, **kwargs):
        kwargs.setdefault("subset_cap", 8)
        return original(runner, **kwargs)

    monkeypatch.setattr(ls, "run_limit_study", capped)
    result = fig8(shared_runner, tiny_population)
    assert "FIG8" in result.name
    assert any("exhaustive best" in note for note in result.notes)
