"""Experiment drivers (small populations for speed)."""

import pytest

from repro.harness import Runner
from repro.harness.experiments import (
    EXPERIMENTS, fig1, fig3, fig9_inputs, main,
)
from repro.workloads import all_benchmarks


@pytest.fixture(scope="module")
def small_population():
    return all_benchmarks(suites=["comm"])[:4]


@pytest.fixture(scope="module")
def shared_runner():
    return Runner()


def test_fig3_structure(shared_runner, small_population):
    result = fig3(shared_runner, small_population)
    groups = list(result.groups)
    assert any("reduced" in g for g in groups)
    assert any("full" in g for g in groups)
    assert "coverage" in result.groups
    reduced_curves = result.groups[groups[0]]
    labels = [c.label for c in reduced_curves]
    assert labels == ["no-mini-graphs", "struct-all", "struct-none"]
    for curve in reduced_curves:
        assert len(curve) == len(small_population)


def test_fig3_coverage_ordering(shared_runner, small_population):
    """Struct-All coverage dominates Struct-None per program (§3.2)."""
    result = fig3(shared_runner, small_population)
    cov_all = result.curve("coverage", "struct-all")
    cov_none = result.curve("coverage", "struct-none")
    for program in cov_all.by_program:
        assert cov_all.by_program[program] >= \
            cov_none.by_program[program] - 1e-9


def test_fig1_notes(shared_runner, small_population):
    result = fig1(shared_runner, small_population)
    assert any("slack-profile" in n for n in result.notes)
    rendered = result.render()
    assert "FIG1" in rendered


def test_fig9_inputs_structure(shared_runner, small_population):
    result = fig9_inputs(shared_runner, small_population)
    curves = next(iter(result.groups.values()))
    assert [c.label for c in curves] == ["self (train)", "cross (ref)"]
    assert any("cross-input" in n for n in result.notes)


def test_experiment_registry_complete():
    assert set(EXPERIMENTS) == {"fig1", "fig3", "fig6", "fig7", "fig8",
                                "fig9-machines", "fig9-inputs"}


def test_render_full_tables(shared_runner, small_population):
    result = fig1(shared_runner, small_population)
    text = result.render(full_tables=True)
    assert "rank" in text


def test_cli_smoke(capsys):
    code = main(["fig1", "--suites", "comm", "--limit", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "FIG1" in out
