"""Runner orchestration: caching, selector runs, Slack-Dynamic wiring."""

from repro.harness import Runner
from repro.minigraph import SlackProfileSelector, StructAll, StructNone
from repro.pipeline import cross_2way_config, full_config, reduced_config


def test_trace_cached(runner):
    first = runner.trace("crc32")
    second = runner.trace("crc32")
    assert first is second


def test_trace_per_input(runner):
    assert runner.trace("crc32", "train") is not runner.trace("crc32", "ref")


def test_baseline_cached(runner, reduced_cfg):
    first = runner.baseline("crc32", reduced_cfg)
    second = runner.baseline("crc32", reduced_cfg)
    assert first is second
    assert first.ipc > 0


def test_baseline_per_config(runner, full_cfg, reduced_cfg):
    full = runner.baseline("crc32", full_cfg)
    reduced = runner.baseline("crc32", reduced_cfg)
    assert full.ipc != reduced.ipc


def test_profile_labels(runner, reduced_cfg):
    profile = runner.slack_profile("crc32", reduced_cfg)
    assert profile.config_name == "reduced"
    assert profile.program_name == "crc32"
    assert len(profile) > 0


def test_plan_cached_per_selector(runner):
    plan_all = runner.plan("crc32", StructAll())
    plan_all2 = runner.plan("crc32", StructAll())
    plan_none = runner.plan("crc32", StructNone())
    assert plan_all is plan_all2
    assert plan_all is not plan_none


def test_run_selector_result_fields(runner, reduced_cfg):
    run = runner.run_selector("crc32", StructAll(), reduced_cfg)
    assert run.program == "crc32"
    assert run.selector == "struct-all"
    assert run.config == "reduced"
    assert run.ipc > 0
    assert 0 <= run.coverage <= 1
    assert run.stats.original_committed == len(runner.trace("crc32"))


def test_slack_profile_selector_via_runner(runner, reduced_cfg):
    run = runner.run_selector("crc32", SlackProfileSelector(), reduced_cfg)
    assert run.selector == "slack-profile"
    assert run.stats.original_committed == len(runner.trace("crc32"))


def test_cross_trained_profile(runner, reduced_cfg):
    run = runner.run_selector("drr", SlackProfileSelector(), reduced_cfg,
                              profile_config=cross_2way_config())
    assert run.ipc > 0


def test_cross_input_profile(runner, reduced_cfg):
    run = runner.run_selector("drr", SlackProfileSelector(), reduced_cfg,
                              profile_input="ref")
    assert run.ipc > 0


def test_slack_dynamic_run(runner, reduced_cfg):
    run = runner.run_slack_dynamic("crc32", reduced_cfg)
    assert run.selector == "slack-dynamic"
    assert run.stats.original_committed == len(runner.trace("crc32"))


def test_slack_dynamic_variants_labelled(runner, reduced_cfg):
    ideal = runner.run_slack_dynamic("crc32", reduced_cfg,
                                     outlining_penalty=False)
    assert ideal.selector == "ideal-slack-dynamic"
    sial = runner.run_slack_dynamic("crc32", reduced_cfg, mode="sial",
                                    outlining_penalty=False)
    assert sial.selector == "ideal-slack-dynamic-sial"


def test_budget_respected():
    tight = Runner(budget=3)
    plan = tight.plan("adpcm", StructAll())
    assert plan.n_templates <= 3
