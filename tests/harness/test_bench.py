"""``repro bench`` harness: measurement, serialization, regression gate."""

import dataclasses
import json

import pytest

from repro.harness.bench import (
    BenchPoint, check_against, load_report, run_bench, write_report,
)


@pytest.fixture(scope="module")
def report(runner_module):
    return run_bench(benchmarks=("crc32",),
                     selectors=("none", "struct-all"),
                     label="test", repeat=2, runner=runner_module)


@pytest.fixture(scope="module")
def runner_module():
    from repro.harness import Runner
    return Runner()


def test_report_shape(report):
    assert [(p.bench, p.selector) for p in report.points] == \
        [("crc32", "none"), ("crc32", "struct-all")]
    for point in report.points:
        assert point.cycles > 0
        assert point.instructions > 0
        assert point.kips > 0
        assert 0.0 <= point.coverage <= 1.0
    assert report.total_instructions == \
        sum(p.instructions for p in report.points)
    assert report.kips > 0
    assert report.repeat == 2


def test_fidelity_fields_are_deterministic(report, runner_module):
    """Cycles/IPC/coverage must not depend on the measurement run."""
    again = run_bench(benchmarks=("crc32",), selectors=("none",),
                      label="again", runner=runner_module)
    first = next(p for p in report.points if p.selector == "none")
    assert (again.points[0].cycles, again.points[0].ipc,
            again.points[0].coverage, again.points[0].instructions) == \
        (first.cycles, first.ipc, first.coverage, first.instructions)


def test_write_and_load_roundtrip(report, tmp_path):
    path = write_report(report, tmp_path)
    assert path.name == "BENCH_test.json"
    loaded = load_report(path)
    assert loaded.label == report.label
    assert loaded.schema == report.schema
    assert loaded.points == report.points
    # The file is plain sorted JSON, diffable in review.
    data = json.loads(path.read_text())
    assert list(data) == sorted(data)


def test_check_against_passes_itself(report):
    assert check_against(report, report) == []


def test_check_against_flags_fidelity_drift(report):
    drifted = dataclasses.replace(report)
    drifted.points = [dataclasses.replace(p) for p in report.points]
    drifted.points[0].cycles += 1
    failures = check_against(drifted, report)
    assert len(failures) == 1
    assert "cycles diverged" in failures[0]


def test_check_against_gates_aggregate_kips(report):
    slow = dataclasses.replace(report)
    slow.points = list(report.points)
    slow.kips = report.kips * 0.5
    failures = check_against(slow, report, tolerance=0.20)
    assert len(failures) == 1
    assert "KIPS regressed" in failures[0]
    # Within tolerance is not a failure; per-point KIPS is never gated.
    slow.kips = report.kips * 0.85
    assert check_against(slow, report, tolerance=0.20) == []


def test_check_against_requires_overlap(report):
    other = dataclasses.replace(report)
    other.points = [dataclasses.replace(p, bench="fft")
                    for p in report.points]
    failures = check_against(other, report)
    assert failures == ["no overlapping matrix points with the baseline"]


def test_render_mentions_every_point(report):
    text = report.render()
    assert "crc32" in text and "struct-all" in text
    assert "KIPS" in text


def test_unknown_selector_rejected(runner_module):
    with pytest.raises(ValueError, match="unknown bench selector"):
        run_bench(benchmarks=("crc32",), selectors=("bogus",),
                  runner=runner_module)


def test_point_is_serializable():
    point = BenchPoint(bench="b", selector="s", config="c", records=1,
                       instructions=1, cycles=1, ipc=1.0, coverage=0.0,
                       wall_s=0.001, kips=1.0)
    assert json.loads(json.dumps(dataclasses.asdict(point)))


def test_report_embeds_run_manifest(report, tmp_path):
    """Every BENCH json carries git SHA / config digest / salt."""
    from repro.exec.store import code_version
    manifest = report.manifest
    for key in ("git_sha", "config_digest", "salt", "created", "label"):
        assert key in manifest, key
    assert manifest["salt"] == code_version()
    loaded = load_report(write_report(report, tmp_path))
    assert loaded.manifest == manifest


def test_load_report_pre_manifest_files(report, tmp_path):
    """BENCH files written before the manifest field still load."""
    path = write_report(report, tmp_path)
    data = json.loads(path.read_text())
    del data["manifest"]
    data["future_field"] = "ignored"  # unknown fields are dropped, not fatal
    path.write_text(json.dumps(data))
    loaded = load_report(path)
    assert loaded.manifest == {}
    assert loaded.points == report.points


def test_bench_with_telemetry_spans_points(runner_module, tmp_path):
    from repro.obs.telemetry import TelemetryWriter, validate_file

    writer = TelemetryWriter(tmp_path / "bench.jsonl")
    traced = run_bench(benchmarks=("crc32",), selectors=("none",),
                       label="traced", runner=runner_module,
                       telemetry=writer)
    writer.close()
    assert traced.manifest is writer.manifest
    summary = validate_file(writer.path)
    assert summary["cats"].get("bench") == 1
    with open(writer.path) as handle:
        lines = [json.loads(line) for line in handle]
    span = next(l for l in lines[1:] if l.get("cat") == "bench")
    assert span["name"] == "crc32/none" and span["ph"] == "X"
    assert span["args"]["cycles"] == traced.points[0].cycles
