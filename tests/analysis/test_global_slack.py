"""Global slack computation and its relation to local slack."""

from repro.analysis.global_slack import GlobalSlackCollector, \
    compare_profiles
from repro.isa import Assembler
from repro.isa.interp import execute
from repro.minigraph.slack import SLACK_CAP, SlackCollector
from repro.pipeline import reduced_config
from repro.pipeline.core import OoOCore

from tests.conftest import build_branchy_loop, build_sum_loop


def _profiles(program):
    trace = execute(program)
    collector = GlobalSlackCollector(program, config_name="reduced")
    OoOCore(reduced_config(), trace.records, collector=collector,
            warm_caches=True).run()
    return collector.profile(), collector.global_profile()


def test_global_covers_same_pcs():
    program = build_sum_loop()
    local, global_ = _profiles(program)
    assert set(local.entries) == set(global_.entries)


def test_global_at_least_local():
    """Global slack widens local slack wherever local is a real (uncapped)
    measurement. (The local profile caps unconsumed values at SLACK_CAP,
    which can exceed the true end-of-execution bound global slack uses.)"""
    program = build_sum_loop()
    local, global_ = _profiles(program)
    checked = 0
    for pc in local.entries:
        local_slack = local.entries[pc].slack
        if local_slack >= SLACK_CAP * 0.9:
            continue  # capped: not a real consumer measurement
        assert global_.entries[pc].slack >= local_slack - 1.0, \
            (pc, local_slack, global_.entries[pc].slack)
        checked += 1
    assert checked > 0


def test_critical_chain_has_no_global_slack():
    """A pure serial chain that *is* the program: near-zero global slack."""
    a = Assembler("chain")
    a.data_zeros(1)
    a.li("r1", 1)
    a.li("r2", 400)
    a.label("top")
    for _ in range(6):
        a.addi("r1", "r1", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "top")
    a.st("r1", "r0", 0)
    a.halt()
    program = a.build()
    _, global_ = _profiles(program)
    chain = [global_.entries[pc].slack for pc in range(2, 8)]
    assert all(s < 4.0 for s in chain), chain


def test_dead_end_value_has_global_slack_to_end():
    """A value produced early and consumed by nothing can slide to the end
    of execution: capped global slack."""
    a = Assembler("t")
    a.data_zeros(1)
    a.li("r9", 42)            # never consumed
    a.li("r1", 1)
    a.li("r2", 300)
    a.label("top")
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "top")
    a.st("r1", "r0", 0)
    a.halt()
    program = a.build()
    _, global_ = _profiles(program)
    assert global_.entries[0].slack == SLACK_CAP


def test_mispredicted_branches_pin_zero():
    program = build_branchy_loop()
    local, global_ = _profiles(program)
    # The data-dependent branch mispredicts: its global slack collapses.
    from repro.isa.opcodes import OC_BRANCH
    branch_pcs = [pc for pc, inst in enumerate(program.instructions)
                  if inst.opclass == OC_BRANCH]
    # Per-pc slack averages over instances; the per-instance *minimum*
    # shows the mispredicted instances pinned at zero.
    assert min(global_.entries[pc].min_slack for pc in branch_pcs
               if pc in global_.entries) == 0


def test_compare_profiles_summary():
    program = build_sum_loop()
    local, global_ = _profiles(program)
    summary = compare_profiles(local, global_)
    assert summary["n"] == len(local.entries)
    assert summary["mean_global"] >= summary["mean_local"] - 1.0
    assert 0.0 <= summary["fraction_global_wider"] <= 1.0


def test_global_profile_usable_by_selector():
    """Drop-in: the global profile feeds SlackProfileSelector unchanged."""
    from repro.minigraph import SlackProfileSelector, make_plan
    program = build_sum_loop()
    trace = execute(program)
    _, global_ = _profiles(program)
    plan = make_plan(program, trace.dynamic_count_of(),
                     SlackProfileSelector(), profile=global_)
    assert plan.n_templates >= 0  # plan construction succeeds
