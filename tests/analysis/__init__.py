"""Test package."""
