"""Per-suite report breakdowns."""

import pytest

from repro.analysis import SuiteRow, compare_selectors_by_suite, \
    suite_report
from repro.harness import Runner
from repro.minigraph import StructAll


@pytest.fixture(scope="module")
def shared_runner():
    return Runner()


@pytest.fixture(scope="module")
def report(shared_runner):
    return suite_report(shared_runner, StructAll(),
                        suites=["comm", "media"], limit_per_suite=2)


def test_rows_per_suite_plus_total(report):
    suites = [row.suite for row in report.rows]
    assert suites == ["comm", "media", "ALL"]
    for row in report.rows[:-1]:
        assert row.n == 2
    assert report.rows[-1].n == 4


def test_total_is_weighted_mean(report):
    parts = report.rows[:-1]
    total = report.rows[-1]
    expected = sum(r.selector_rel * r.n for r in parts) / total.n
    assert abs(total.selector_rel - expected) < 1e-9


def test_values_in_range(report):
    for row in report.rows:
        assert 0 < row.no_mg_rel <= 1.5
        assert 0 < row.selector_rel <= 2.0
        assert 0 <= row.coverage <= 1.0
        assert row.mg_serialized_rate >= 0.0


def test_recovered_semantics():
    full_recovery = SuiteRow("x", 1, no_mg_rel=0.8, selector_rel=1.0,
                             coverage=0.5, mg_serialized_rate=0.0)
    assert abs(full_recovery.recovered - 1.0) < 1e-9
    none = SuiteRow("x", 1, 0.8, 0.8, 0.5, 0.0)
    assert none.recovered == 0.0
    no_loss = SuiteRow("x", 1, 1.0, 1.01, 0.5, 0.0)
    assert no_loss.recovered == 1.0


def test_render(report):
    text = report.render()
    assert "struct-all" in text
    assert "ALL" in text
    assert "recovered" in text


def test_compare_selectors(shared_runner):
    text = compare_selectors_by_suite(shared_runner, suites=["comm"],
                                      limit_per_suite=2)
    assert "struct-all" in text and "slack-profile" in text
    assert "awareness gain" in text


def test_cli_report(capsys):
    from repro.__main__ import main
    assert main(["report", "--selector", "struct-all",
                 "--limit-per-suite", "1"]) == 0
    out = capsys.readouterr().out
    assert "per-suite breakdown" in out


def test_empty_suite_selection_has_no_total(shared_runner):
    report = suite_report(shared_runner, StructAll(), suites=[],
                          limit_per_suite=1)
    assert report.rows == []
    assert "per-suite breakdown" in report.render()


def test_recovered_is_capped():
    runaway = SuiteRow("x", 1, no_mg_rel=0.99, selector_rel=2.0,
                       coverage=0.5, mg_serialized_rate=0.0)
    assert runaway.recovered == 9.99


def test_render_row_alignment(report):
    lines = report.render().splitlines()
    body = lines[2:]
    assert len(body) == len(report.rows)
    # Every row renders its suite name and five numeric columns.
    for line, row in zip(body, report.rows):
        assert row.suite in line
        assert line.count("%") == 3  # recovered, coverage, serialized


def test_default_selector_is_slack_profile(shared_runner):
    report = suite_report(shared_runner, suites=["comm"],
                          limit_per_suite=1)
    assert report.selector == "slack-profile"


def test_limit_per_suite_bounds_population(shared_runner):
    report = suite_report(shared_runner, StructAll(), suites=["comm"],
                          limit_per_suite=1)
    assert [row.n for row in report.rows] == [1, 1]  # comm + ALL


def test_compare_covers_all_suites_in_selection(shared_runner):
    text = compare_selectors_by_suite(shared_runner,
                                      suites=["comm", "media"],
                                      limit_per_suite=1)
    lines = text.splitlines()
    assert lines[0].lstrip().startswith("suite")
    suites = [line.split()[0] for line in lines[1:]]
    assert suites == ["comm", "media", "ALL"]
    for line in lines[1:]:
        assert line.split()[3].startswith(("+", "-"))  # signed gain column
