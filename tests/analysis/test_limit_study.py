"""Limit study (Figure 8) machinery with a truncated subset sweep."""

import pytest

from repro.analysis import run_limit_study, top_nonoverlapping_sites
from repro.harness import Runner


@pytest.fixture(scope="module")
def study():
    return run_limit_study(Runner(), subset_cap=32)


def test_top_sites_nonoverlapping():
    runner = Runner()
    sites = top_nonoverlapping_sites(runner, "adpcm", "tiny", 10)
    assert len(sites) == 10
    ordered = sorted(sites, key=lambda s: s.start)
    for a, b in zip(ordered, ordered[1:]):
        assert a.end <= b.start
    assert all(site.frequency > 0 for site in sites)


def test_empty_set_is_no_minigraph_baseline(study):
    empty = study.empty_set
    assert empty.coverage == 0.0
    assert empty.relative_ipc > 0


def test_coverage_monotone_in_mask_size(study):
    """Supersets of a subset never have lower coverage."""
    by_mask = {p.mask: p for p in study.points}
    for point in study.points:
        for bit in range(10):
            smaller = point.mask & ~(1 << bit)
            if smaller != point.mask and smaller in by_mask:
                assert by_mask[smaller].coverage <= point.coverage + 1e-9


def test_selector_points_present(study):
    assert {"struct-all", "struct-none", "struct-bounded",
            "slack-profile", "slack-dynamic"} <= set(study.selector_points)


def test_struct_all_has_max_coverage(study):
    struct_all = study.selector_points["struct-all"]
    assert struct_all.mask == (1 << 10) - 1
    for point in study.selector_points.values():
        assert point.coverage <= struct_all.coverage + 1e-9


def test_struct_none_has_min_coverage_of_selectors(study):
    struct_none = study.selector_points["struct-none"]
    for name, point in study.selector_points.items():
        if name not in ("struct-none", "slack-dynamic"):
            assert struct_none.coverage <= point.coverage + 1e-9


def test_render(study):
    text = study.render()
    assert "exhaustive best" in text
    assert "struct-all" in text


def test_subset_members():
    from repro.analysis import SubsetPoint
    point = SubsetPoint(0b1010001101, 0.5, 1.0)
    assert point.members() == [0, 2, 3, 7, 9]


def test_full_mask_has_max_coverage():
    """The all-candidates subset dominates coverage over any partial one."""
    study = run_limit_study(Runner(), subset_cap=16)
    by_mask = {p.mask: p for p in study.points}
    full_point = study.selector_points["struct-all"]
    for point in study.points:
        assert point.coverage <= full_point.coverage + 1e-9


def test_selector_points_relative_ipc_positive():
    study = run_limit_study(Runner(), subset_cap=4)
    for point in study.selector_points.values():
        assert point.relative_ipc > 0
