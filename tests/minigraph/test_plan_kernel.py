"""Plan-kernel parity: native plan construction vs the Python reference.

The compiled kernel carries three plan-construction entry points —
``repro_profile_build`` (packed SoA slack profiles straight from the
event-tap log), ``repro_enumerate_candidates`` (C candidate discovery
over packed static columns), and ``repro_score_candidates`` (the §4
delay-model rules over whole candidate sets). Python keeps the
reference implementation of each, selected by the same
``REPRO_PURE_PY`` / no-compiler contract as the timing kernel. These
tests pin the bit-identity of the two paths: same profiles, same
candidates (down to pickle bytes), same selector pools — across the
golden-matrix workloads, ≥50 fuzz-derived programs, and the degrade
paths (pure-Python forced, kernel-ineligible shapes).
"""

import pickle

import pytest

from repro.check.fuzz import FuzzSpec
from repro.minigraph import candidates as candidates_mod
from repro.minigraph.candidates import (
    PackedCandidateSet, enumerate_candidates,
)
from repro.minigraph.delay_model import (
    VERDICT_DEGRADES, VERDICT_DELAY_ONLY, VERDICT_PROFILED,
    VERDICT_SIAL, assess, assess_batch,
)
from repro.minigraph.selectors import (
    ReadPortAwareSelector, SlackProfileSelector,
)
from repro.minigraph.slack import SlackCollector
from repro.minigraph.templates import build_templates
from repro.pipeline import ckern
from repro.pipeline.config import config_by_name
from repro.pipeline.core import OoOCore
from repro.harness.runner import Runner
from repro.workloads import benchmark

needs_kernel = pytest.mark.skipif(
    not ckern.available(),
    reason="compiled kernel unavailable (no C compiler or REPRO_PURE_PY)")

#: Profiling runs happen on the reduced machine (§5.5 self-training).
PROFILE_CONFIG = "reduced"

WORKLOADS = ["crc32", "adpcm", "fft", "gzip"]

#: Shared memoizing runner: traces are input-deterministic, so one
#: per-module instance keeps the fuzz/golden sweeps fast.
RUNNER = Runner()

#: The golden enumeration matrix: every (max_size, max_ext) corner the
#: packed-candidate encoding supports, plus one oversize point that
#: must degrade to the Python enumerator.
SIZES = [2, 3, 4]
EXTS = [0, 1, 2, 3]


def _program(name):
    return benchmark(name).program("train")


def _fresh_enumeration(program, max_size, max_ext):
    """Enumerate with cold caches so each call pays its full cost."""
    candidates_mod._STATIC_CACHE.clear()
    candidates_mod._PACK_CACHE.clear()
    return enumerate_candidates(program, max_size=max_size,
                                max_ext_inputs=max_ext)


def _candidate_fields(candidate):
    return (candidate.start, candidate.end, candidate.ext_inputs,
            candidate.output, candidate.edges, candidate.serialization,
            candidate.has_load, candidate.has_store, candidate.has_branch,
            candidate.latencies)


def _profile_pair(name, monkeypatch):
    """(native, pure-python) profiles rebuilt from one tap event log."""
    program = _program(name)
    config = config_by_name(PROFILE_CONFIG)
    packed = RUNNER.trace(name, "train").packed()

    def capture():
        collector = SlackCollector(program, config_name=config.name,
                                   input_name="train")
        core = OoOCore(config, packed, collector=collector,
                       warm_caches=True)
        core.run()
        return collector.profile()

    native = capture()
    monkeypatch.setenv("REPRO_PURE_PY", "1")
    reference = capture()
    monkeypatch.delenv("REPRO_PURE_PY")
    return native, reference


# ---------------------------------------------------------------------
# Packed profile build
# ---------------------------------------------------------------------

@needs_kernel
@pytest.mark.parametrize("name", WORKLOADS)
def test_packed_profile_build_bit_identical(name, monkeypatch):
    """Native SoA profile build == Python observer path, pickle bytes."""
    native, reference = _profile_pair(name, monkeypatch)
    assert native.entries.keys() == reference.entries.keys()
    for pc, entry in native.entries.items():
        want = reference.entries[pc]
        assert (entry.count, entry.rel_issue, entry.src_ready,
                entry.out_ready, entry.slack, entry.min_slack) == \
            (want.count, want.rel_issue, want.src_ready,
             want.out_ready, want.slack, want.min_slack), f"{name} pc={pc}"
    assert pickle.dumps(native) == pickle.dumps(reference)


@needs_kernel
@pytest.mark.parametrize("name", ["crc32", "gzip"])
def test_packed_profile_entry_order_preserved(name, monkeypatch):
    """The order[] column preserves first-commit insertion order."""
    native, reference = _profile_pair(name, monkeypatch)
    assert list(native.entries) == list(reference.entries)


# ---------------------------------------------------------------------
# C candidate enumeration
# ---------------------------------------------------------------------

@needs_kernel
@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("max_size", SIZES)
@pytest.mark.parametrize("max_ext", EXTS)
def test_enumeration_parity_golden_matrix(name, max_size, max_ext,
                                          monkeypatch):
    """Field-for-field and pickle-byte parity on every matrix corner."""
    program = _program(name)
    native = _fresh_enumeration(program, max_size, max_ext)
    assert isinstance(native, PackedCandidateSet)
    monkeypatch.setenv("REPRO_PURE_PY", "1")
    reference = _fresh_enumeration(program, max_size, max_ext)
    monkeypatch.delenv("REPRO_PURE_PY")
    assert not isinstance(reference, PackedCandidateSet)
    assert len(native) == len(reference)
    for got, want in zip(native, reference):
        assert _candidate_fields(got) == _candidate_fields(want)
    # The store boundary materializes list(...): stored artifacts must
    # be byte-identical whichever enumerator produced them.
    assert pickle.dumps(list(native)) == pickle.dumps(list(reference))


@needs_kernel
@pytest.mark.parametrize("seed", range(50))
def test_enumeration_parity_fuzz(seed, monkeypatch):
    """≥50 fuzz-derived programs agree between the enumerators."""
    program = FuzzSpec.derive(seed).build()
    native = _fresh_enumeration(program, 4, 3)
    monkeypatch.setenv("REPRO_PURE_PY", "1")
    reference = _fresh_enumeration(program, 4, 3)
    monkeypatch.delenv("REPRO_PURE_PY")
    assert len(native) == len(reference)
    for got, want in zip(native, reference):
        assert _candidate_fields(got) == _candidate_fields(want)


@needs_kernel
def test_enumeration_lazy_rehydration_is_cached():
    """Indexing a PackedCandidateSet twice returns the same object."""
    native = _fresh_enumeration(_program("crc32"), 4, 3)
    assert len(native)
    assert native[0] is native[0]


# ---------------------------------------------------------------------
# Native scoring
# ---------------------------------------------------------------------

def _scoring_fixture(name):
    program = _program(name)
    candidates = _fresh_enumeration(program, 4, 3)
    trace = RUNNER.trace(name, "train")
    config = config_by_name(PROFILE_CONFIG)
    collector = SlackCollector(program, config_name=config.name,
                               input_name="train")
    OoOCore(config, trace.packed(), collector=collector,
            warm_caches=True).run()
    profile = collector.profile()
    templates = build_templates(candidates, trace.dynamic_count_of())
    sites = [site for template in templates for site in template.sites]
    return candidates, profile, sites


@needs_kernel
@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("variant", ["full", "delay", "sial"])
def test_scoring_pool_parity(name, variant, monkeypatch):
    """Batch-scored selector pools == per-site assess() pools."""
    candidates, profile, sites = _scoring_fixture(name)
    selector = SlackProfileSelector(variant=variant)
    native = selector.build_pool(sites, profile, candidates)
    monkeypatch.setenv("REPRO_PURE_PY", "1")
    reference = selector.build_pool(sites, profile, candidates)
    monkeypatch.delenv("REPRO_PURE_PY")
    assert [site.id for site in native] == [site.id for site in reference]


@needs_kernel
@pytest.mark.parametrize("name", ["crc32", "fft"])
def test_scoring_verdicts_match_per_site_assess(name):
    """The verdict bitmask agrees with assess() site for site."""
    candidates, profile, sites = _scoring_fixture(name)
    verdicts = assess_batch(candidates, profile)
    assert verdicts is not None
    for site in sites:
        expected = assess(site.candidate, profile)
        verdict = int(verdicts[site.id])
        if expected is None:
            assert verdict == 0, f"site {site.id}"
        else:
            assert verdict & VERDICT_PROFILED
            assert bool(verdict & VERDICT_DEGRADES) == \
                expected.degrades
            assert bool(verdict & VERDICT_DELAY_ONLY) == \
                expected.degrades_delay_only
            assert bool(verdict & VERDICT_SIAL) == \
                expected.degrades_sial


@needs_kernel
@pytest.mark.parametrize("name", WORKLOADS)
def test_read_port_selector_parity(name, monkeypatch):
    """ReadPortAwareSelector agrees with its per-site path."""
    candidates, profile, sites = _scoring_fixture(name)
    selector = ReadPortAwareSelector(port_budget=2, pressure_weight=1.0)
    native = selector.build_pool(sites, profile, candidates)
    monkeypatch.setenv("REPRO_PURE_PY", "1")
    reference = selector.build_pool(sites, profile, candidates)
    monkeypatch.delenv("REPRO_PURE_PY")
    assert [site.id for site in native] == [site.id for site in reference]


# ---------------------------------------------------------------------
# Degrade paths
# ---------------------------------------------------------------------

def test_pure_python_env_disables_every_plan_kernel(monkeypatch):
    """REPRO_PURE_PY routes every entry point to the reference path."""
    monkeypatch.setenv("REPRO_PURE_PY", "1")
    program = _program("crc32")
    result = _fresh_enumeration(program, 4, 3)
    assert not isinstance(result, PackedCandidateSet)
    assert ckern.profile_build(None, 0, 0, None, None, 0, 0, 64) is None
    assert ckern.plan_enumerate(None, None, None, None, None, None,
                                4, 3) is None
    assert assess_batch(result or [], None) is None


@needs_kernel
def test_oversize_shapes_degrade_to_python():
    """Sizes the packed encoding cannot carry fall back cleanly."""
    program = _program("dijkstra")
    oversize = _fresh_enumeration(program, 5, 3)
    assert not isinstance(oversize, PackedCandidateSet)
    wide = _fresh_enumeration(program, 4, 4)
    assert not isinstance(wide, PackedCandidateSet)


@needs_kernel
def test_library_loss_degrades_to_python(monkeypatch):
    """available() flipping false mid-session falls back, not crashes."""
    program = _program("crc32")
    native = list(_fresh_enumeration(program, 4, 3))
    monkeypatch.setattr(ckern, "available", lambda: False)
    reference = list(_fresh_enumeration(program, 4, 3))
    assert [_candidate_fields(c) for c in native] == \
        [_candidate_fields(c) for c in reference]


@needs_kernel
def test_plan_kernel_counters_advance():
    """collect_ckern's plan-side counters move when the kernels run."""
    before = dict(ckern.counters)
    candidates, profile, sites = _scoring_fixture("crc32")
    SlackProfileSelector().build_pool(sites, profile, candidates)
    assert ckern.counters["profiles_built_native"] > \
        before.get("profiles_built_native", 0)
    assert ckern.counters["candidates_enumerated_native"] > \
        before.get("candidates_enumerated_native", 0)
    assert ckern.counters["scoring_calls"] > \
        before.get("scoring_calls", 0)


# ---------------------------------------------------------------------
# Global-slack fold
# ---------------------------------------------------------------------

@needs_kernel
@pytest.mark.parametrize("name", ["crc32", "fft"])
def test_global_fold_bit_identical(name, monkeypatch):
    """repro_global_fold == the Python tap decode, profile for profile."""
    from repro.analysis.global_slack import GlobalSlackCollector

    program = _program(name)
    config = config_by_name(PROFILE_CONFIG)
    packed = RUNNER.trace(name, "train").packed()

    def capture():
        collector = GlobalSlackCollector(program, config_name=config.name,
                                         input_name="train")
        core = OoOCore(config, packed, collector=collector,
                       warm_caches=True)
        core.run()
        return collector.profile(), collector.global_profile()

    native_local, native_global = capture()
    monkeypatch.setenv("REPRO_PURE_PY", "1")
    ref_local, ref_global = capture()
    monkeypatch.delenv("REPRO_PURE_PY")
    assert pickle.dumps(native_local) == pickle.dumps(ref_local)
    assert pickle.dumps(native_global) == pickle.dumps(ref_global)
