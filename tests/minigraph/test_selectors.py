"""The five selectors: pool semantics and relative aggressiveness."""

import pytest

from repro.minigraph import (
    SerializationClass, SlackDynamicSelector, SlackProfileSelector,
    StructAll, StructBounded, StructNone, make_plan,
)
from repro.minigraph.selectors import FixedSetSelector
from repro.minigraph.slack import SlackCollector
from repro.minigraph.templates import build_templates
from repro.minigraph import enumerate_candidates
from repro.pipeline import reduced_config
from repro.pipeline.core import OoOCore


def _sites(program, trace):
    candidates = enumerate_candidates(program)
    templates = build_templates(candidates, trace.dynamic_count_of())
    return [site for t in templates for site in t.sites]


def _profile(program, trace):
    collector = SlackCollector(program, config_name="reduced")
    OoOCore(reduced_config(), trace.records, collector=collector,
            warm_caches=True).run()
    return collector.profile()


def test_pool_ordering(branchy_loop, branchy_trace):
    """Pool sizes: none <= bounded <= slack-profile-pool? and all is max.

    Struct-None ⊆ Struct-Bounded ⊆ Struct-All always holds; Slack-Profile
    lies between Struct-None and Struct-All.
    """
    sites = _sites(branchy_loop, branchy_trace)
    profile = _profile(branchy_loop, branchy_trace)
    pool_all = StructAll().build_pool(sites, None)
    pool_none = StructNone().build_pool(sites, None)
    pool_bounded = StructBounded().build_pool(sites, None)
    pool_slack = SlackProfileSelector().build_pool(sites, profile)
    ids = lambda pool: {s.id for s in pool}
    assert ids(pool_none) <= ids(pool_bounded) <= ids(pool_all)
    assert ids(pool_none) <= ids(pool_slack) <= ids(pool_all)
    assert len(pool_all) == len(sites)


def test_struct_none_admits_only_shape_safe(branchy_loop, branchy_trace):
    sites = _sites(branchy_loop, branchy_trace)
    pool = StructNone().build_pool(sites, None)
    for site in pool:
        assert site.candidate.serialization is SerializationClass.NONE


def test_struct_bounded_excludes_unbounded(branchy_loop, branchy_trace):
    sites = _sites(branchy_loop, branchy_trace)
    pool = StructBounded().build_pool(sites, None)
    for site in pool:
        assert site.candidate.serialization is not \
            SerializationClass.UNBOUNDED


def test_slack_profile_requires_profile(branchy_loop, branchy_trace):
    sites = _sites(branchy_loop, branchy_trace)
    serializing = [s for s in sites
                   if s.candidate.is_potentially_serializing]
    if not serializing:
        pytest.skip("no serializing candidates in this program")
    with pytest.raises(ValueError):
        SlackProfileSelector().admit(serializing[0], None)


def test_slack_profile_variants_are_ordered(branchy_loop, branchy_trace):
    """full admits ⊇ delay admits (rule #4 only relaxes rejection)."""
    sites = _sites(branchy_loop, branchy_trace)
    profile = _profile(branchy_loop, branchy_trace)
    full_pool = {s.id for s in
                 SlackProfileSelector("full").build_pool(sites, profile)}
    delay_pool = {s.id for s in
                  SlackProfileSelector("delay").build_pool(sites, profile)}
    assert delay_pool <= full_pool


def test_slack_profile_unknown_variant_rejected():
    with pytest.raises(ValueError):
        SlackProfileSelector("bogus")


def test_slack_dynamic_pool_equals_struct_all(branchy_loop, branchy_trace):
    sites = _sites(branchy_loop, branchy_trace)
    dynamic_pool = {s.id for s in
                    SlackDynamicSelector().build_pool(sites, None)}
    all_pool = {s.id for s in StructAll().build_pool(sites, None)}
    assert dynamic_pool == all_pool


def test_fixed_set_selector(branchy_loop, branchy_trace):
    sites = _sites(branchy_loop, branchy_trace)
    chosen = {sites[0].id}
    pool = FixedSetSelector(chosen).build_pool(sites, None)
    assert {s.id for s in pool} == chosen


def test_make_plan_end_to_end(branchy_loop, branchy_trace):
    plan = make_plan(branchy_loop, branchy_trace.dynamic_count_of(),
                     StructAll())
    assert plan.sites
    assert plan.n_templates <= 512


def test_make_plan_budget(branchy_loop, branchy_trace):
    plan = make_plan(branchy_loop, branchy_trace.dynamic_count_of(),
                     StructAll(), budget=1)
    assert plan.n_templates <= 1


def test_selector_names():
    assert StructAll().name == "struct-all"
    assert StructNone().name == "struct-none"
    assert StructBounded().name == "struct-bounded"
    assert SlackProfileSelector().name == "slack-profile"
    assert SlackProfileSelector("delay").name == "slack-profile-delay"
    assert SlackProfileSelector("sial").name == "slack-profile-sial"
    assert SlackDynamicSelector().name == "slack-dynamic"
