"""The selectors: pool semantics, aggressiveness, hyperparameter protocol."""

import pytest

from repro.minigraph import (
    SerializationClass, SlackDynamicSelector, SlackProfileSelector,
    StructAll, StructBounded, StructNone, make_plan,
)
from repro.minigraph.selectors import (
    SELECTOR_FAMILIES, FixedSetSelector, ReadPortAwareSelector,
    selector_from_spec,
)
from repro.minigraph.slack import SlackCollector
from repro.minigraph.templates import build_templates
from repro.minigraph import enumerate_candidates
from repro.pipeline import reduced_config
from repro.pipeline.core import OoOCore


def _sites(program, trace):
    candidates = enumerate_candidates(program)
    templates = build_templates(candidates, trace.dynamic_count_of())
    return [site for t in templates for site in t.sites]


def _profile(program, trace):
    collector = SlackCollector(program, config_name="reduced")
    OoOCore(reduced_config(), trace.records, collector=collector,
            warm_caches=True).run()
    return collector.profile()


def test_pool_ordering(branchy_loop, branchy_trace):
    """Pool sizes: none <= bounded <= slack-profile-pool? and all is max.

    Struct-None ⊆ Struct-Bounded ⊆ Struct-All always holds; Slack-Profile
    lies between Struct-None and Struct-All.
    """
    sites = _sites(branchy_loop, branchy_trace)
    profile = _profile(branchy_loop, branchy_trace)
    pool_all = StructAll().build_pool(sites, None)
    pool_none = StructNone().build_pool(sites, None)
    pool_bounded = StructBounded().build_pool(sites, None)
    pool_slack = SlackProfileSelector().build_pool(sites, profile)
    ids = lambda pool: {s.id for s in pool}
    assert ids(pool_none) <= ids(pool_bounded) <= ids(pool_all)
    assert ids(pool_none) <= ids(pool_slack) <= ids(pool_all)
    assert len(pool_all) == len(sites)


def test_struct_none_admits_only_shape_safe(branchy_loop, branchy_trace):
    sites = _sites(branchy_loop, branchy_trace)
    pool = StructNone().build_pool(sites, None)
    for site in pool:
        assert site.candidate.serialization is SerializationClass.NONE


def test_struct_bounded_excludes_unbounded(branchy_loop, branchy_trace):
    sites = _sites(branchy_loop, branchy_trace)
    pool = StructBounded().build_pool(sites, None)
    for site in pool:
        assert site.candidate.serialization is not \
            SerializationClass.UNBOUNDED


def test_slack_profile_requires_profile(branchy_loop, branchy_trace):
    sites = _sites(branchy_loop, branchy_trace)
    serializing = [s for s in sites
                   if s.candidate.is_potentially_serializing]
    if not serializing:
        pytest.skip("no serializing candidates in this program")
    with pytest.raises(ValueError):
        SlackProfileSelector().admit(serializing[0], None)


def test_slack_profile_variants_are_ordered(branchy_loop, branchy_trace):
    """full admits ⊇ delay admits (rule #4 only relaxes rejection)."""
    sites = _sites(branchy_loop, branchy_trace)
    profile = _profile(branchy_loop, branchy_trace)
    full_pool = {s.id for s in
                 SlackProfileSelector("full").build_pool(sites, profile)}
    delay_pool = {s.id for s in
                  SlackProfileSelector("delay").build_pool(sites, profile)}
    assert delay_pool <= full_pool


def test_slack_profile_unknown_variant_rejected():
    with pytest.raises(ValueError):
        SlackProfileSelector("bogus")


def test_slack_dynamic_pool_equals_struct_all(branchy_loop, branchy_trace):
    sites = _sites(branchy_loop, branchy_trace)
    dynamic_pool = {s.id for s in
                    SlackDynamicSelector().build_pool(sites, None)}
    all_pool = {s.id for s in StructAll().build_pool(sites, None)}
    assert dynamic_pool == all_pool


def test_fixed_set_selector(branchy_loop, branchy_trace):
    sites = _sites(branchy_loop, branchy_trace)
    chosen = {sites[0].id}
    pool = FixedSetSelector(chosen).build_pool(sites, None)
    assert {s.id for s in pool} == chosen


def test_make_plan_end_to_end(branchy_loop, branchy_trace):
    plan = make_plan(branchy_loop, branchy_trace.dynamic_count_of(),
                     StructAll())
    assert plan.sites
    assert plan.n_templates <= 512


def test_make_plan_budget(branchy_loop, branchy_trace):
    plan = make_plan(branchy_loop, branchy_trace.dynamic_count_of(),
                     StructAll(), budget=1)
    assert plan.n_templates <= 1


def test_selector_names():
    assert StructAll().name == "struct-all"
    assert StructNone().name == "struct-none"
    assert StructBounded().name == "struct-bounded"
    assert SlackProfileSelector().name == "slack-profile"
    assert SlackProfileSelector("delay").name == "slack-profile-delay"
    assert SlackProfileSelector("sial").name == "slack-profile-sial"
    assert SlackDynamicSelector().name == "slack-dynamic"
    assert ReadPortAwareSelector().name == "read-port"


# -- hyperparameter protocol --------------------------------------------------

def _protocol_instances():
    """One instance per registered family, plus hyperparameter variants."""
    return [
        StructAll(), StructNone(), StructBounded(),
        SlackProfileSelector(),
        SlackProfileSelector("delay", unprofiled_ok=False),
        SlackProfileSelector("sial", measured_latencies=True),
        SlackDynamicSelector(),
        FixedSetSelector({4, 1, 9}),
        ReadPortAwareSelector(),
        ReadPortAwareSelector(port_budget=0, pressure_weight=3.0),
        ReadPortAwareSelector(port_budget=1, pressure_weight=0.5),
    ]


def test_every_family_is_registered():
    kinds = {type(sel).kind for sel in _protocol_instances()}
    assert kinds <= set(SELECTOR_FAMILIES)
    for kind, cls in SELECTOR_FAMILIES.items():
        assert cls.kind == kind


def test_spec_is_kind_plus_params():
    for sel in _protocol_instances():
        assert sel.spec() == {"kind": type(sel).kind, **sel.params()}


def test_params_round_trip_specs():
    for sel in _protocol_instances():
        rebuilt = type(sel).from_params(sel.params())
        assert rebuilt.spec() == sel.spec()
        assert rebuilt.display_name == sel.display_name
        assert selector_from_spec(sel.spec()).spec() == sel.spec()


def test_params_round_trip_bit_identical_plans(branchy_loop, branchy_trace):
    """from_params(s.params()) selects exactly the plan ``s`` selects."""
    freq = branchy_trace.dynamic_count_of()
    profile = _profile(branchy_loop, branchy_trace)
    for sel in _protocol_instances():
        if isinstance(sel, FixedSetSelector):
            continue   # site ids are program-specific; covered above
        rebuilt = type(sel).from_params(sel.params())
        kwargs = {"profile": profile} if sel.needs_profile else {}
        original = make_plan(branchy_loop, freq, sel, **kwargs)
        again = make_plan(branchy_loop, freq, rebuilt, **kwargs)
        assert [(s.start, s.end, s.template.id) for s in original.sites] \
            == [(s.start, s.end, s.template.id) for s in again.sites]


def test_selector_from_spec_rejects_unknown():
    with pytest.raises(ValueError):
        selector_from_spec({"kind": "psychic"})
    with pytest.raises(ValueError):
        selector_from_spec({})


# -- read-port-aware selector -------------------------------------------------

def test_read_port_rejects_bad_hyperparameters():
    with pytest.raises(ValueError):
        ReadPortAwareSelector(port_budget=-1)
    with pytest.raises(ValueError):
        ReadPortAwareSelector(pressure_weight=-0.5)


def test_read_port_pool_is_subset_of_struct_all(branchy_loop,
                                                branchy_trace):
    sites = _sites(branchy_loop, branchy_trace)
    all_ids = {s.id for s in StructAll().build_pool(sites, None)}
    for budget in (0, 1, 2, 3):
        for weight in (0.0, 1.0, 3.0):
            sel = ReadPortAwareSelector(budget, weight)
            assert {s.id for s in sel.build_pool(sites, None)} <= all_ids


def test_read_port_budget_monotone(branchy_loop, branchy_trace):
    """A larger port budget never shrinks the pool."""
    sites = _sites(branchy_loop, branchy_trace)
    pools = [{s.id for s in
              ReadPortAwareSelector(b, 1.0).build_pool(sites, None)}
             for b in (0, 1, 2, 3)]
    for smaller, larger in zip(pools, pools[1:]):
        assert smaller <= larger


def test_read_port_serializing_sites_respect_budget(branchy_loop,
                                                    branchy_trace):
    sites = _sites(branchy_loop, branchy_trace)
    sel = ReadPortAwareSelector(port_budget=1)
    for site in sel.build_pool(sites, None):
        if site.candidate.serialization is not SerializationClass.NONE:
            assert site.candidate.serialization is \
                SerializationClass.BOUNDED
            assert len(site.candidate.ext_inputs) <= 1


def test_read_port_max_weight_drops_over_budget_sites(branchy_loop,
                                                      branchy_trace):
    """At pressure_weight >= MAX_EXT_INPUTS every over-budget site goes."""
    sites = _sites(branchy_loop, branchy_trace)
    sel = ReadPortAwareSelector(port_budget=0, pressure_weight=3.0)
    for site in sel.build_pool(sites, None):
        assert len(site.candidate.ext_inputs) == 0
