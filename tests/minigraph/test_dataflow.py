"""Liveness and dataflow analysis."""

from repro.isa import Assembler
from repro.minigraph.dataflow import (
    group_interface, internal_edges, is_connected, liveness, reaches,
)


def _linear_program():
    a = Assembler("lin")
    a.li("r1", 1)          # 0
    a.li("r2", 2)          # 1
    a.add("r3", "r1", "r2")  # 2
    a.add("r4", "r3", "r3")  # 3: kills r3's last use
    a.st("r4", "r0", 0)    # 4
    a.halt()               # 5
    a.data_zeros(1)
    return a.build()


def test_liveness_linear():
    program = _linear_program()
    live = liveness(program)
    assert 1 in live[0] and 2 in live[1]
    assert 3 in live[2]
    assert 3 not in live[3]      # r3 dead after its last use
    assert 4 in live[3]
    assert 4 not in live[4]


def test_liveness_across_branches():
    a = Assembler("br")
    a.li("r1", 1)             # 0
    a.li("r2", 0)             # 1
    a.beq("r1", "r0", "els")  # 2
    a.addi("r2", "r1", 5)     # 3: uses r1
    a.jmp("join")             # 4
    a.label("els")
    a.li("r2", 7)             # 5
    a.label("join")
    a.st("r2", "r0", 0)       # 6
    a.halt()
    a.data_zeros(1)
    program = a.build()
    live = liveness(program)
    assert 1 in live[1]       # r1 live into the branch (used at 3)
    assert 2 in live[3] and 2 in live[5]
    assert 2 not in live[6]


def test_liveness_loop_carried():
    a = Assembler("loop")
    a.li("r1", 4)             # 0
    a.label("top")
    a.addi("r1", "r1", -1)    # 1
    a.bne("r1", "r0", "top")  # 2: r1 live around the back edge
    a.halt()
    program = a.build()
    live = liveness(program)
    assert 1 in live[2] or 1 in live[1]
    # r1 is live-out of the branch via the back edge to PC 1.
    assert 1 in live[2]


def test_jr_is_fully_conservative():
    a = Assembler("jr")
    a.li("r1", 3)
    a.li("r2", 9)
    a.jr("r1")
    a.halt()
    program = a.build()
    live = liveness(program)
    # Everything is considered live after an indirect jump.
    assert 2 in live[2]
    assert 15 in live[2]


def test_group_interface_inputs_and_outputs():
    program = _linear_program()
    live = liveness(program)
    # Group = PCs [2, 4): add r3; add r4 — r3 interior, r4 live-out.
    ext_inputs, outputs = group_interface(program, 2, 4, live)
    assert [(reg, off) for reg, off, _ in ext_inputs] == [(1, 0), (2, 0)]
    assert outputs == [(4, 1)]


def test_group_interface_interior_value():
    program = _linear_program()
    live = liveness(program)
    # Group [2, 5): add, add, store — r4 consumed by the store... but it is
    # dead after, so there is no register output at all.
    _, outputs = group_interface(program, 2, 5, live)
    assert outputs == []


def test_group_interface_serializing_input():
    a = Assembler("ser")
    a.li("r1", 1)
    a.li("r2", 2)
    a.li("r3", 3)
    a.add("r4", "r1", "r1")   # 3: group start
    a.add("r5", "r4", "r3")   # 4: r3 external, first consumed at offset 1
    a.st("r5", "r0", 0)
    a.halt()
    a.data_zeros(1)
    program = a.build()
    live = liveness(program)
    ext_inputs, _ = group_interface(program, 3, 5, live)
    assert (1, 0, 0) in ext_inputs    # r1 into the first constituent
    assert (3, 1, 1) in ext_inputs    # r3 into the second — serializing


def test_internal_edges():
    program = _linear_program()
    edges = internal_edges(program, 2, 4)
    assert edges == [(0, 1)]


def test_internal_edges_ignore_external_regs():
    a = Assembler("t")
    a.add("r3", "r1", "r2")
    a.add("r4", "r1", "r2")   # same external sources, no internal edge
    a.halt()
    program = a.build()
    assert internal_edges(program, 0, 2) == []


def test_is_connected():
    assert is_connected(2, [(0, 1)])
    assert not is_connected(2, [])
    assert is_connected(3, [(0, 2), (1, 2)])
    assert not is_connected(4, [(0, 1), (2, 3)])
    assert is_connected(1, [])


def test_reaches():
    edges = [(0, 1), (1, 2)]
    assert reaches(3, edges, 0, 2)
    assert reaches(3, edges, 1, 2)
    assert not reaches(3, edges, 2, 0)
    assert reaches(3, edges, 2, 2)  # trivially
