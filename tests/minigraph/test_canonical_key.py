"""Template canonicalization: register-renaming invariance properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Assembler
from repro.minigraph import enumerate_candidates
from repro.minigraph.templates import canonical_key

_OPS2 = ["add", "sub", "xor", "and_", "or_"]


def _build_block(ops, regs, store_offset):
    """A 3-op block over the given register assignment."""
    a = Assembler("t")
    a.data_zeros(4)
    a.li(f"r{regs[0]}", 1)
    a.li(f"r{regs[1]}", 2)
    getattr(a, ops[0])(f"r{regs[2]}", f"r{regs[0]}", f"r{regs[1]}")
    getattr(a, ops[1])(f"r{regs[3]}", f"r{regs[2]}", f"r{regs[2]}")
    a.st(f"r{regs[3]}", "r0", store_offset)
    a.halt()
    return a.build()


def _key_of(program, span):
    candidate = next(c for c in enumerate_candidates(program)
                     if (c.start, c.end) == span)
    return canonical_key(candidate)


@given(ops=st.tuples(st.sampled_from(_OPS2), st.sampled_from(_OPS2)),
       regs_a=st.permutations([1, 2, 3, 4]),
       regs_b=st.permutations([5, 6, 7, 8]))
@settings(max_examples=40, deadline=None)
def test_register_renaming_invariance(ops, regs_a, regs_b):
    """The same dataflow shape over different registers shares a key."""
    program_a = _build_block(ops, list(regs_a), 0)
    program_b = _build_block(ops, list(regs_b), 0)
    assert _key_of(program_a, (2, 5)) == _key_of(program_b, (2, 5))


@given(ops=st.tuples(st.sampled_from(_OPS2), st.sampled_from(_OPS2)))
@settings(max_examples=20, deadline=None)
def test_different_store_offsets_differ(ops):
    """Memory offsets are stored in the MGT: they distinguish templates."""
    program_a = _build_block(ops, [1, 2, 3, 4], 0)
    program_b = _build_block(ops, [1, 2, 3, 4], 1)
    assert _key_of(program_a, (2, 5)) != _key_of(program_b, (2, 5))


@given(op_a=st.sampled_from(_OPS2), op_b=st.sampled_from(_OPS2))
@settings(max_examples=20, deadline=None)
def test_different_ops_differ(op_a, op_b):
    program_a = _build_block((op_a, "add"), [1, 2, 3, 4], 0)
    program_b = _build_block((op_b, "add"), [1, 2, 3, 4], 0)
    keys_equal = _key_of(program_a, (2, 5)) == _key_of(program_b, (2, 5))
    assert keys_equal == (op_a == op_b)


def test_operand_order_matters():
    """``sub a, b`` and ``sub b, a`` are different shapes."""
    a1 = Assembler("t")
    a1.data_zeros(1)
    a1.li("r1", 1)
    a1.li("r2", 2)
    a1.sub("r3", "r1", "r2")
    a1.sub("r4", "r3", "r3")
    a1.st("r4", "r0", 0)
    a1.halt()
    a2 = Assembler("t")
    a2.data_zeros(1)
    a2.li("r1", 1)
    a2.li("r2", 2)
    a2.sub("r3", "r2", "r1")   # swapped external operands
    a2.sub("r4", "r3", "r3")
    a2.st("r4", "r0", 0)
    a2.halt()
    # The canonical renaming numbers inputs by first use, so the swap
    # produces the *same* key: I0 is whichever is read first. That is the
    # correct MGT-sharing semantics — verify it explicitly.
    assert _key_of(a1.build(), (2, 5)) == _key_of(a2.build(), (2, 5))


def test_commutative_shapes_not_over_merged():
    """Reading the same register twice differs from two distinct inputs."""
    one_input = Assembler("t")
    one_input.data_zeros(1)
    one_input.li("r1", 1)
    one_input.add("r3", "r1", "r1")
    one_input.add("r4", "r3", "r3")
    one_input.st("r4", "r0", 0)
    one_input.halt()
    two_inputs = _build_block(("add", "add"), [1, 2, 3, 4], 0)
    assert _key_of(one_input.build(), (1, 4)) != \
        _key_of(two_inputs, (2, 5))
