"""Slack-Dynamic policy: hysteresis, disabling, resurrection, variants."""

import pytest

from repro.minigraph.dynamic import MiniGraphPolicy, SlackDynamicPolicy


class FakeSite:
    def __init__(self, site_id):
        self.id = site_id


def test_base_policy_always_enabled():
    policy = MiniGraphPolicy()
    site = FakeSite(1)
    assert policy.enabled(site)
    policy.on_issue(site, True, True)
    policy.on_consumer_delay(site)
    assert policy.enabled(site)


def test_full_mode_needs_consumer_delay():
    policy = SlackDynamicPolicy(mode="full", threshold=2)
    site = FakeSite(1)
    # Serialized issues alone never disable in full mode.
    for _ in range(20):
        policy.on_issue(site, True, True)
    assert policy.enabled(site)
    # Propagated delay does.
    policy.on_consumer_delay(site)
    policy.on_consumer_delay(site)
    assert not policy.enabled(site)
    assert policy.disable_events == 1


def test_delay_mode_disables_on_serialization():
    policy = SlackDynamicPolicy(mode="delay", threshold=3,
                                outlining_penalty=False)
    site = FakeSite(1)
    for _ in range(3):
        policy.on_issue(site, True, True)
    assert not policy.enabled(site)


def test_sial_mode_uses_arrival_order_only():
    policy = SlackDynamicPolicy(mode="sial", threshold=2)
    site = FakeSite(1)
    # serialized=False but sial=True still counts against the site.
    policy.on_issue(site, False, True)
    policy.on_issue(site, False, True)
    assert not policy.enabled(site)


def test_hysteresis_decay():
    policy = SlackDynamicPolicy(mode="delay", threshold=2, decay_interval=2)
    site = FakeSite(1)
    policy.on_issue(site, True, True)      # counter 1
    policy.on_issue(site, False, False)    # benign
    policy.on_issue(site, False, False)    # benign -> counter decays to 0
    policy.on_issue(site, True, True)      # counter 1 again
    assert policy.enabled(site)            # never reached the threshold


def test_resurrection_after_quiet_period():
    policy = SlackDynamicPolicy(mode="delay", threshold=1,
                                resurrect_interval=3)
    site = FakeSite(1)
    policy.on_issue(site, True, True)
    assert not policy.enabled(site)        # quiet 1
    assert not policy.enabled(site)        # quiet 2
    assert policy.enabled(site)            # resurrected on probation
    assert policy.resurrect_events == 1
    # Probation: one more harmful event re-disables immediately.
    policy.on_issue(site, True, True)
    assert not policy.enabled(site)


def test_sites_tracked_independently():
    policy = SlackDynamicPolicy(mode="delay", threshold=1)
    bad = FakeSite(1)
    good = FakeSite(2)
    policy.on_issue(bad, True, True)
    assert not policy.enabled(bad)
    assert policy.enabled(good)
    assert policy.disabled_sites() == 1


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        SlackDynamicPolicy(mode="wrong")


def test_outlining_penalty_flag():
    assert SlackDynamicPolicy().outlining_penalty is True
    assert SlackDynamicPolicy(outlining_penalty=False).outlining_penalty \
        is False
