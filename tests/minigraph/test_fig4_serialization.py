"""Figure 4: the paper's serialization taxonomy, reproduced structurally.

Figure 4c: a fully-connected mini-graph whose serializing input is
*upstream* of the register output — delay is bounded by the aggregate's
own latency. Figure 4d: the serializing input is *downstream* of the
output — delay grows with the input's arrival skew (unbounded).
Disconnected aggregates are always unbounded.
"""

from repro.isa import Assembler
from repro.minigraph import SerializationClass, classify, enumerate_candidates
from repro.minigraph.serialization import serializing_inputs


class TestClassifyDirectly:

    def test_no_external_serialization(self):
        # Both inputs feed constituent 0.
        cls = classify(2, [(1, 0, 0), (2, 0, 1)], [(0, 1)], 1)
        assert cls is SerializationClass.NONE

    def test_fig4c_bounded_upstream(self):
        # Serializing input feeds constituent 0... make it feed 1, with the
        # output produced by constituent 1 downstream of it: A -> B(out),
        # serializing input into B? No: upstream means the consumer flows
        # INTO the producer of the output. Consumer 1 == producer 1.
        cls = classify(2, [(1, 0, 0), (2, 1, 1)], [(0, 1)], 1)
        assert cls is SerializationClass.BOUNDED

    def test_fig4d_unbounded_downstream(self):
        # Output produced by constituent 0; serializing input feeds
        # constituent 1, which does NOT flow into 0.
        cls = classify(2, [(1, 0, 0), (2, 1, 1)], [(0, 1)], 0)
        assert cls is SerializationClass.UNBOUNDED

    def test_disconnected_is_unbounded(self):
        cls = classify(2, [(1, 0, 0), (2, 1, 1)], [], 0)
        assert cls is SerializationClass.UNBOUNDED

    def test_no_register_output_is_bounded(self):
        cls = classify(2, [(1, 0, 0), (2, 1, 1)], [(0, 1)], None)
        assert cls is SerializationClass.BOUNDED

    def test_serializing_inputs_helper(self):
        inputs = [(1, 0, 0), (2, 1, 1), (3, 2, 0)]
        serial = serializing_inputs(inputs)
        assert serial == [(2, 1, 1), (3, 2, 0)]


class TestClassifyFromPrograms:

    def _candidates(self, body):
        a = Assembler("t")
        a.data_zeros(4)
        for reg in range(1, 4):
            a.li(f"r{reg}", reg)
        body(a)
        a.halt()
        program = a.build()
        return {(c.start, c.end): c for c in enumerate_candidates(program)}

    def test_upstream_three_wide(self):
        """x = a+b; y = x+c; z = y+y -- c is serializing but upstream of z."""
        cands = self._candidates(lambda a: (
            a.add("r4", "r1", "r2"),
            a.add("r5", "r4", "r3"),
            a.add("r6", "r5", "r5"),
            a.st("r6", "r0", 0),
        ))
        candidate = cands[(3, 6)]
        assert candidate.serialization is SerializationClass.BOUNDED

    def test_downstream_three_wide(self):
        """out = a+a (first); t = out+c (dead after store inside group)."""
        cands = self._candidates(lambda a: (
            a.add("r4", "r1", "r1"),
            a.add("r5", "r4", "r3"),
            a.st("r5", "r0", 0),
            a.add("r7", "r4", "r2"),
            a.st("r7", "r0", 1),
        ))
        # Group [3,6): r4 is the register output? r4 is live (used at 6)
        # and r5 dies at the store -> output is r4, produced at offset 0;
        # serializing input r3 feeds offset 1 which does not reach 0.
        candidate = cands[(3, 6)]
        assert candidate.out_reg == 4
        assert candidate.serialization is SerializationClass.UNBOUNDED

    def test_disconnected_program(self):
        cands = self._candidates(lambda a: (
            a.add("r4", "r1", "r2"),
            a.add("r5", "r3", "r3"),
            a.st("r5", "r0", 0),
            a.st("r4", "r0", 1),
        ))
        # [3,5): two independent adds; r4 live-out (stored later), r5 dies
        # only after its store... both live at pc 4 end -> two outputs, so
        # use [3,6): r4 out, disconnected serializing pair.
        candidate = cands.get((3, 6))
        assert candidate is not None
        assert candidate.serialization is SerializationClass.UNBOUNDED
