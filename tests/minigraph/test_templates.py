"""Template canonicalization, grouping, and the MGT capacity model."""

import pytest

from repro.isa import Assembler
from repro.minigraph import enumerate_candidates
from repro.minigraph.templates import (
    MiniGraphTable, build_templates, canonical_key,
)


def _two_site_program():
    """The same add/add shape at two static locations, different registers."""
    a = Assembler("t")
    a.data_zeros(4)
    a.li("r1", 1)              # 0
    a.li("r2", 2)              # 1
    a.li("r3", 3)              # 2
    a.add("r4", "r1", "r2")    # 3  site 1
    a.add("r5", "r4", "r4")    # 4
    a.st("r5", "r0", 0)        # 5
    a.add("r6", "r2", "r3")    # 6  site 2 (same shape, different regs)
    a.add("r7", "r6", "r6")    # 7
    a.st("r7", "r0", 1)        # 8
    a.halt()
    return a.build()


def _counts(program, value=10):
    return [value] * len(program)


def test_same_shape_shares_template():
    program = _two_site_program()
    candidates = [c for c in enumerate_candidates(program)
                  if (c.start, c.end) in ((3, 5), (6, 8))]
    assert len(candidates) == 2
    keys = {canonical_key(c) for c in candidates}
    assert len(keys) == 1


def test_different_imm_distinct_templates():
    a = Assembler("t")
    a.data_zeros(4)
    a.li("r1", 1)
    a.addi("r4", "r1", 5)
    a.slli("r5", "r4", 2)
    a.st("r5", "r0", 0)
    a.addi("r6", "r1", 9)      # different immediate
    a.slli("r7", "r6", 2)
    a.st("r7", "r0", 1)
    a.halt()
    program = a.build()
    candidates = [c for c in enumerate_candidates(program)
                  if (c.start, c.end) in ((1, 3), (4, 6))]
    keys = {canonical_key(c) for c in candidates}
    assert len(keys) == 2


def test_branch_targets_excluded_from_key():
    a = Assembler("t")
    a.li("r1", 1)
    a.add("r4", "r1", "r1")
    a.bne("r4", "r0", "x")     # target "x"
    a.label("x")
    a.add("r5", "r1", "r1")
    a.bne("r5", "r0", "y")     # different target "y"
    a.label("y")
    a.halt()
    program = a.build()
    candidates = [c for c in enumerate_candidates(program)
                  if c.size == 2 and c.has_branch]
    assert len(candidates) == 2
    keys = {canonical_key(c) for c in candidates}
    assert len(keys) == 1      # target is in the handle, not the template


def test_build_templates_groups_sites():
    program = _two_site_program()
    candidates = enumerate_candidates(program)
    templates = build_templates(candidates, _counts(program))
    two_site = [t for t in templates if len(t.sites) == 2]
    assert two_site, "the shared add/add shape must group"
    template = two_site[0]
    assert template.size == 2
    assert all(site.template is template for site in template.sites)


def test_site_frequency_from_counts():
    program = _two_site_program()
    counts = [0] * len(program)
    counts[3] = 7
    counts[6] = 11
    candidates = enumerate_candidates(program)
    templates = build_templates(candidates, counts)
    for template in templates:
        for site in template.sites:
            if site.start == 3:
                assert site.frequency == 7
                assert site.score_contribution == (site.end - site.start
                                                   - 1) * 7
            if site.start == 6:
                assert site.frequency == 11


def test_site_metadata():
    a = Assembler("t")
    a.data_zeros(4)
    a.li("r1", 1)
    a.li("r2", 2)
    a.ld("r4", "r1", 0)        # 2
    a.add("r5", "r4", "r2")    # 3: r2 external, serializing
    a.st("r5", "r0", 0)        # 4
    a.halt()
    program = a.build()
    candidates = enumerate_candidates(program)
    templates = build_templates(candidates, _counts(program))
    site = next(s for t in templates for s in t.sites
                if (s.start, s.end) == (2, 4))
    assert site.mem_pc == 2
    assert site.input_consumer_ix[2] == 1   # r2 first consumed at offset 1
    assert site.input_consumer_ix[1] == 0   # r1 at offset 0


def test_mgt_capacity():
    table = MiniGraphTable(entries=2)
    program = _two_site_program()
    templates = build_templates(enumerate_candidates(program),
                                _counts(program))
    table.install(templates[0])
    table.install(templates[1])
    with pytest.raises(OverflowError):
        table.install(templates[2])
    assert len(table) == 2
    assert templates[0].id in table
    assert table.lookup(templates[0].id) is templates[0]
    assert table.lookup(9999) is None
