"""Greedy budgeted selection with overlap discounting."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Assembler
from repro.minigraph import enumerate_candidates, select
from repro.minigraph.selection import empty_plan
from repro.minigraph.templates import build_templates


def _straightline(n_groups=6):
    """n_groups independent add/add/store groups in one block."""
    a = Assembler("t")
    a.data_zeros(n_groups)
    a.li("r1", 1)
    a.li("r2", 2)
    for i in range(n_groups):
        a.add("r4", "r1", "r2")
        a.add("r5", "r4", "r4")
        a.st("r5", "r0", i)
    a.halt()
    return a.build()


def _sites(program, counts=None):
    candidates = enumerate_candidates(program)
    if counts is None:
        counts = [10] * len(program)
    templates = build_templates(candidates, counts)
    return [site for t in templates for site in t.sites]


def test_selected_sites_are_disjoint():
    program = _straightline()
    plan = select(_sites(program))
    covered = set()
    for site in plan.sites:
        span = set(range(site.start, site.end))
        assert not covered & span
        covered |= span


def test_budget_limits_templates():
    program = _straightline(8)
    sites = _sites(program)
    plan = select(sites, budget=2)
    assert plan.n_templates <= 2


def test_zero_frequency_never_selected():
    program = _straightline()
    counts = [0] * len(program)
    plan = select(_sites(program, counts))
    assert not plan.sites


def test_higher_score_wins():
    """With a tight budget, the template with higher (n-1)*f is chosen.

    ``mul`` separators keep enumeration windows from spanning groups
    (complex ops are not aggregable).
    """
    a = Assembler("t")
    a.data_zeros(4)
    a.li("r1", 1)
    a.li("r2", 2)
    a.mul("r9", "r1", "r2")     # separator
    # Group X: size 2.
    a.add("r4", "r1", "r2")     # 3
    a.st("r4", "r0", 0)         # 4
    a.mul("r9", "r1", "r2")     # separator
    # Group Y: size 3 (higher score at equal frequency).
    a.add("r5", "r1", "r2")     # 6
    a.add("r6", "r5", "r5")     # 7
    a.st("r6", "r0", 1)         # 8
    a.mul("r9", "r1", "r2")     # separator
    a.halt()
    program = a.build()
    sites = _sites(program)
    plan = select(sites, budget=1)
    assert plan.n_templates == 1
    assert [(site.start, site.end) for site in plan.sites] == [(6, 9)]


def test_overlap_discounting_prefers_disjoint_coverage():
    """Four identical 3-wide groups (same store offset => one template):
    the 3-wide template out-scores any 2-wide sub-window and all four
    instances are claimed."""
    a = Assembler("t")
    a.data_zeros(4)
    a.li("r1", 1)
    a.li("r2", 2)
    for _ in range(4):
        a.mul("r9", "r1", "r2")   # separator
        a.add("r4", "r1", "r2")
        a.add("r5", "r4", "r4")
        a.st("r5", "r0", 0)       # identical offset: shapes share a template
    a.halt()
    program = a.build()
    plan = select(_sites(program))
    assert sum(site.end - site.start for site in plan.sites) == 12
    assert len({site.template.id for site in plan.sites}) == 1


def test_plan_queries():
    program = _straightline(2)
    plan = select(_sites(program))
    first = plan.sites[0]
    assert plan.site_at(first.start) is first
    assert plan.site_at(999) is None
    assert 0 < plan.static_coverage(len(program)) <= 1.0
    expected = plan.expected_dynamic_coverage(10 * len(program))
    assert 0 < expected <= 1.0


def test_empty_plan():
    plan = empty_plan()
    assert not plan.sites
    assert plan.static_coverage(100) == 0.0
    assert plan.expected_dynamic_coverage(100) == 0.0


@given(budget=st.integers(min_value=0, max_value=8),
       freq=st.lists(st.integers(min_value=0, max_value=50), min_size=21,
                     max_size=21))
@settings(max_examples=25, deadline=None)
def test_selection_invariants_random_frequencies(budget, freq):
    program = _straightline(6)
    counts = (freq * ((len(program) // len(freq)) + 1))[:len(program)]
    plan = select(_sites(program, counts), budget=budget)
    assert plan.n_templates <= budget
    covered = set()
    for site in plan.sites:
        span = set(range(site.start, site.end))
        assert not covered & span
        covered |= span
    # Every chosen template earned a positive score (zero-frequency sites
    # may ride along with a profitable template, but never drive one).
    for template in plan.templates:
        assert any(site.frequency > 0 for site in template.sites)
