"""Mini-graph-aware code motion: legality and coverage benefit."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Assembler
from repro.isa.interp import execute
from repro.minigraph import StructAll, StructNone, make_plan
from repro.minigraph.schedule import (
    SchedulingError, reschedule, schedule_block, verify_equivalence,
)
from repro.workloads import all_benchmarks, benchmark
from repro.workloads.generator import synth_builder


def _interleaved_chains():
    """Two independent chains interleaved: motion should de-interleave."""
    a = Assembler("interleaved")
    a.data_zeros(4)
    a.li("r1", 1)
    a.li("r2", 2)
    a.add("r4", "r1", "r1")    # 2: chain A
    a.add("r5", "r2", "r2")    # 3: chain B
    a.add("r6", "r4", "r4")    # 4: chain A
    a.add("r7", "r5", "r5")    # 5: chain B
    a.st("r6", "r0", 0)        # 6: chain A sink
    a.st("r7", "r0", 1)        # 7: chain B sink
    a.halt()
    return a.build()


def test_chains_become_adjacent():
    program = _interleaved_chains()
    rewritten = reschedule(program, verify=True)
    rendered = [inst.render() for inst in rewritten.instructions]
    ix_a1 = rendered.index("add r4, r1, r1")
    ix_a2 = rendered.index("add r6, r4, r4")
    assert ix_a2 == ix_a1 + 1  # the A-chain is now contiguous


def test_stores_stay_ordered():
    program = _interleaved_chains()
    rewritten = reschedule(program)
    stores = [inst for inst in rewritten.instructions if inst.is_store]
    assert stores[0].imm == 0 and stores[1].imm == 1


def test_branch_stays_last():
    a = Assembler("t")
    a.li("r1", 4)
    a.label("top")
    a.addi("r2", "r1", 3)
    a.addi("r1", "r1", -1)
    a.bne("r1", "r0", "top")
    a.halt()
    program = a.build()
    rewritten = reschedule(program, verify=True)
    for block in rewritten.basic_blocks():
        for pc in range(block.start, block.end - 1):
            assert not rewritten.instructions[pc].is_control


def test_block_boundaries_unchanged():
    program = benchmark("adpcm").program("train")
    rewritten = reschedule(program)
    spans_a = [(b.start, b.end) for b in program.basic_blocks()]
    spans_b = [(b.start, b.end) for b in rewritten.basic_blocks()]
    assert spans_a == spans_b


@pytest.mark.parametrize("name", ["adpcm", "crc32", "qsort", "sha",
                                  "dijkstra", "bzip2", "gzip", "drr"])
def test_kernels_survive_rescheduling(name):
    program = benchmark(name).program("train")
    reschedule(program, verify=True)  # raises SchedulingError on divergence


@given(seed=st.integers(min_value=300, max_value=360))
@settings(max_examples=12, deadline=None)
def test_synthetic_programs_survive_rescheduling(seed):
    program = synth_builder(seed)("train")
    reschedule(program, verify=True)


def test_verify_catches_breakage():
    """A deliberately wrong 'schedule' must be caught."""
    a = Assembler("t")
    a.data_zeros(2)
    a.li("r1", 1)
    a.li("r2", 2)
    a.st("r1", "r0", 0)
    a.st("r2", "r0", 0)     # overwrites: order matters
    a.halt()
    program = a.build()
    # Swap the two stores by hand.
    from repro.isa.instruction import Instruction
    insts = [program.instructions[i] for i in (0, 1, 3, 2, 4)]
    clones = [Instruction(i.op, i.rd, i.srcs, i.imm) for i in insts]
    from repro.isa.program import Program
    broken = Program("broken", clones, data=program.data,
                     memory_words=program.memory_words)
    with pytest.raises(SchedulingError):
        verify_equivalence(program, broken)


def test_schedule_block_is_permutation():
    program = _interleaved_chains()
    block = program.basic_blocks()[0]
    order = schedule_block(program, block.start, block.end)
    assert sorted(order) == list(block.pcs())


def test_coverage_not_reduced_on_average():
    """The purpose of the pass: candidate coverage (Struct-All plan
    expectation) should not drop, and typically grows."""
    gains = []
    for name in ("adpcm", "gsmlpc", "fft", "sha", "bitcount", "jpegdct"):
        program = benchmark(name).program("train")
        trace = execute(program)
        plan_before = make_plan(program, trace.dynamic_count_of(),
                                StructAll())
        rewritten = reschedule(program)
        trace_after = execute(rewritten)
        plan_after = make_plan(rewritten, trace_after.dynamic_count_of(),
                               StructAll())
        before = plan_before.expected_dynamic_coverage(len(trace.records))
        after = plan_after.expected_dynamic_coverage(
            len(trace_after.records))
        gains.append(after - before)
    assert sum(gains) >= -0.02


def test_chain_bias_grows_safe_pool():
    """De-interleaving favours chain-shaped (shape-safe) candidates: the
    Struct-None pool's coverage should not shrink."""
    program = _interleaved_chains()
    trace = execute(program)
    before = make_plan(program, trace.dynamic_count_of(), StructNone())
    rewritten = reschedule(program)
    trace_after = execute(rewritten)
    after = make_plan(rewritten, trace_after.dynamic_count_of(),
                      StructNone())
    cov_before = before.expected_dynamic_coverage(len(trace.records))
    cov_after = after.expected_dynamic_coverage(len(trace_after.records))
    assert cov_after >= cov_before


@given(seed=st.integers(min_value=400, max_value=460))
@settings(max_examples=15, deadline=None)
def test_schedule_respects_dependences(seed):
    """Direct DAG check: the emitted order never places a consumer before
    its producer, a memory op before a preceding store, or anything after
    the block's control transfer."""
    from repro.isa.opcodes import OC_BRANCH, OC_HALT, OC_JUMP
    program = synth_builder(seed)("train")
    for block in program.basic_blocks():
        order = schedule_block(program, block.start, block.end)
        position = {pc: i for i, pc in enumerate(order)}
        last_writer = {}
        last_store = None
        for pc in range(block.start, block.end):
            inst = program.instructions[pc]
            for src in inst.srcs:
                if src in last_writer:
                    assert position[last_writer[src]] < position[pc]
            if inst.writes_reg:
                last_writer[inst.rd] = pc
            if inst.is_memory:
                if last_store is not None:
                    assert position[last_store] < position[pc]
                if inst.is_store:
                    last_store = pc
            if inst.opclass in (OC_BRANCH, OC_JUMP, OC_HALT):
                assert position[pc] == len(order) - 1
