"""Slack profiling via the timing core."""

from repro.isa import Assembler
from repro.isa.interp import execute
from repro.minigraph.slack import SLACK_CAP, SlackCollector
from repro.pipeline import reduced_config
from repro.pipeline.core import OoOCore


def _profile_of(program, config=None):
    trace = execute(program)
    collector = SlackCollector(program, config_name="reduced")
    core = OoOCore(config or reduced_config(), trace.records,
                   collector=collector, warm_caches=True)
    core.run()
    return collector.profile(), trace


def test_profile_covers_executed_pcs(sum_loop):
    profile, trace = _profile_of(sum_loop)
    executed = {r.pc for r in trace.records}
    assert set(profile.entries) == executed
    assert profile.covers(executed)
    assert not profile.covers([9999])


def test_counts_match_dynamic_execution(sum_loop):
    profile, trace = _profile_of(sum_loop)
    counts = trace.dynamic_count_of()
    for pc, entry in profile.entries.items():
        assert entry.count == counts[pc]


def test_block_leader_anchors_at_zero(sum_loop):
    """The first instruction of a block is its own anchor: rel issue 0."""
    profile, _ = _profile_of(sum_loop)
    for block in sum_loop.basic_blocks():
        entry = profile.get(block.start)
        if entry is not None:
            assert entry.rel_issue == 0.0


def test_dependent_issue_after_source_ready():
    """y = x + x right after a load: its issue trails the load's latency."""
    a = Assembler("t")
    data = a.data_words([5] * 64, label="d")
    a.data_zeros(1, label="out")
    a.li("r1", data)
    a.li("r2", 64)
    a.label("top")
    a.ld("r4", "r1", 0)        # pc 2
    a.add("r5", "r4", "r4")    # pc 3: depends on the load
    a.st("r5", "r0", 64)       # pc 4
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "top")
    a.halt()
    program = a.build()
    profile, _ = _profile_of(program)
    load = profile.get(2)
    dependent = profile.get(3)
    # The add issues at or after the load's data-ready time.
    assert dependent.rel_issue >= load.rel_issue + reduced_config().dl1.latency - 1
    assert dependent.src_ready[0] is not None


def test_slack_capped_for_unconsumed_values():
    a = Assembler("t")
    a.data_zeros(1)
    a.li("r1", 7)       # consumed below
    a.li("r2", 9)       # never consumed
    a.st("r1", "r0", 0)
    a.halt()
    program = a.build()
    profile, _ = _profile_of(program)
    assert profile.get(1).slack == SLACK_CAP


def test_serial_chain_has_zero_slack():
    """In a tight dependence chain every producer is consumed immediately."""
    a = Assembler("t")
    a.data_zeros(1)
    a.li("r1", 1)
    a.li("r2", 500)
    a.label("top")
    for _ in range(6):
        a.addi("r1", "r1", 1)   # pcs 3..8: serial chain
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "top")
    a.st("r1", "r0", 0)
    a.halt()
    program = a.build()
    profile, _ = _profile_of(program)
    chain_slacks = [profile.get(pc).slack for pc in range(3, 8)]
    assert all(s <= 1.5 for s in chain_slacks), chain_slacks


def test_off_critical_path_has_slack():
    """A value consumed long after production accumulates local slack."""
    a = Assembler("t")
    data = a.data_words(list(range(64)), label="d")
    a.data_zeros(1, label="out")
    a.li("r1", data)
    a.li("r2", 64)
    a.li("r7", 0)
    a.label("top")
    a.addi("r6", "r2", 3)      # pc 3: early, consumed at the very end
    a.ld("r4", "r1", 0)
    a.add("r5", "r4", "r4")
    a.add("r5", "r5", "r4")
    a.add("r7", "r7", "r5")
    a.add("r7", "r7", "r6")    # r6 consumed after the load chain
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "top")
    a.st("r7", "r0", 64)
    a.halt()
    program = a.build()
    profile, _ = _profile_of(program)
    early = profile.get(3)
    assert early.slack >= 1.0


def test_mispredicted_branches_get_zero_slack(branchy_loop):
    profile, trace = _profile_of(branchy_loop)
    # The data-dependent branch at the heart of the loop mispredicts often;
    # at least one branch pc must show depressed slack.
    branch_pcs = [r.pc for r in trace.records
                  if r.opclass == 4]  # OC_BRANCH
    slacks = [profile.get(pc).slack for pc in set(branch_pcs)]
    assert min(slacks) < SLACK_CAP


def test_profile_metadata():
    profile, _ = _profile_of(build_program())
    assert profile.config_name == "reduced"
    assert profile.program_name == "meta"
    assert len(profile) > 0


def build_program():
    a = Assembler("meta")
    a.data_zeros(1)
    a.li("r1", 3)
    a.st("r1", "r0", 0)
    a.halt()
    return a.build()
