"""Property tests over the rules #1–#4 delay model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Assembler
from repro.minigraph import enumerate_candidates
from repro.minigraph.delay_model import assess
from repro.minigraph.slack import ProfileEntry, SlackProfile

Times = st.floats(min_value=0.0, max_value=50.0)


def _chain_program():
    a = Assembler("t")
    a.data_zeros(2)
    a.li("r1", 1)              # 0
    a.li("r2", 2)              # 1
    a.add("r4", "r1", "r1")    # 2
    a.add("r5", "r4", "r2")    # 3 (serializing input r2)
    a.add("r6", "r5", "r5")    # 4 (output)
    a.st("r6", "r0", 0)        # 5
    a.halt()
    return a.build()


_PROGRAM = _chain_program()
_CANDIDATE = next(c for c in enumerate_candidates(_PROGRAM)
                  if (c.start, c.end) == (2, 5))


def _profile(issue_b, ready_a, ready_c, issue_d, issue_e, slack_e):
    entries = {
        2: ProfileEntry(2, 10, issue_b, (ready_a, ready_a), issue_b + 1,
                        10.0, 8),
        3: ProfileEntry(3, 10, issue_d, (issue_b + 1, ready_c),
                        issue_d + 1, 10.0, 8),
        4: ProfileEntry(4, 10, issue_e, (issue_d + 1, issue_d + 1),
                        issue_e + 1, slack_e, int(slack_e)),
    }
    return SlackProfile("t", "reduced", "train", entries)


@given(issue_b=Times, ready_a=Times, ready_c=Times, issue_d=Times,
       issue_e=Times, slack_e=Times)
@settings(max_examples=120, deadline=None)
def test_first_constituent_never_earlier(issue_b, ready_a, ready_c,
                                         issue_d, issue_e, slack_e):
    """Rule #1 is a max: the handle can never issue before Issue(0)."""
    assessment = assess(_CANDIDATE, _profile(issue_b, ready_a, ready_c,
                                             issue_d, issue_e, slack_e))
    assert assessment.delays[0] >= -1e-9
    assert assessment.issue_mg[0] >= issue_b - 1e-9
    assert assessment.issue_mg[0] >= ready_a - 1e-9
    assert assessment.issue_mg[0] >= ready_c - 1e-9


@given(issue_b=Times, ready_a=Times, ready_c=Times, issue_d=Times,
       issue_e=Times, slack_e=Times)
@settings(max_examples=120, deadline=None)
def test_internal_chain_monotone(issue_b, ready_a, ready_c, issue_d,
                                 issue_e, slack_e):
    """Rule #2: mg issue times are strictly increasing by the latencies."""
    assessment = assess(_CANDIDATE, _profile(issue_b, ready_a, ready_c,
                                             issue_d, issue_e, slack_e))
    for earlier, later, latency in zip(assessment.issue_mg,
                                       assessment.issue_mg[1:],
                                       _CANDIDATE.latencies):
        assert abs(later - (earlier + latency)) < 1e-9


@given(issue_b=Times, ready_a=Times, ready_c=Times, issue_d=Times,
       issue_e=Times)
@settings(max_examples=80, deadline=None)
def test_zero_slack_degrade_iff_delay(issue_b, ready_a, ready_c, issue_d,
                                      issue_e):
    """With zero output slack, rule #4 fires exactly when rule #3 finds
    positive output delay."""
    assessment = assess(_CANDIDATE, _profile(issue_b, ready_a, ready_c,
                                             issue_d, issue_e, 0.0))
    assert assessment.degrades == (assessment.max_output_delay > 0)


@given(issue_b=Times, ready_a=Times, ready_c=Times, issue_d=Times,
       issue_e=Times, slack_e=Times)
@settings(max_examples=80, deadline=None)
def test_degrade_implies_delay_only_degrade(issue_b, ready_a, ready_c,
                                            issue_d, issue_e, slack_e):
    """Rule #4 rejections are a subset of delay-only rejections."""
    assessment = assess(_CANDIDATE, _profile(issue_b, ready_a, ready_c,
                                             issue_d, issue_e, slack_e))
    if assessment.degrades:
        assert assessment.degrades_delay_only


@given(issue_b=Times, ready_a=Times, ready_c=Times, issue_d=Times,
       issue_e=Times, slack_e=Times, extra=Times)
@settings(max_examples=80, deadline=None)
def test_more_slack_never_adds_rejections(issue_b, ready_a, ready_c,
                                          issue_d, issue_e, slack_e, extra):
    """Monotonicity: increasing an output's slack cannot create a
    rejection."""
    tight = assess(_CANDIDATE, _profile(issue_b, ready_a, ready_c,
                                        issue_d, issue_e, slack_e))
    loose = assess(_CANDIDATE, _profile(issue_b, ready_a, ready_c,
                                        issue_d, issue_e, slack_e + extra))
    if not tight.degrades:
        assert not loose.degrades
