"""Outlining transform: binary layout and trace folding."""

from repro.isa.interp import execute
from repro.minigraph import (
    StructAll, empty_plan, enumerate_candidates, fold_trace, make_plan,
)
from repro.minigraph.transform import MGHandleRecord, TransformedBinary

from tests.conftest import build_sum_loop


def _plan_for(program, trace):
    return make_plan(program, trace.dynamic_count_of(), StructAll())


def test_layout_compacts_binary(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    assert plan.sites, "expected at least one selected site"
    binary = TransformedBinary(sum_loop, plan)
    embedded = sum(site.end - site.start for site in plan.sites)
    assert binary.new_length == len(sum_loop) - embedded + len(plan.sites)
    # PC map is monotonic and handles collapse to one slot.
    last = -1
    for pc in range(len(sum_loop)):
        assert binary.pc_map[pc] >= last
        last = binary.pc_map[pc]


def test_outlined_bodies_beyond_program(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    binary = TransformedBinary(sum_loop, plan)
    for site in plan.sites:
        assert site.outlined_pc >= binary.new_length
    spans = sorted((s.outlined_pc, s.outlined_pc + (s.end - s.start) + 1)
                   for s in plan.sites)
    for (_, end1), (start2, _) in zip(spans, spans[1:]):
        assert end1 <= start2  # outlined bodies do not collide


def test_fold_preserves_instruction_accounting(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    records = fold_trace(sum_trace, plan)
    total = 0
    handles = 0
    for rec in records:
        if rec.kind == 1:
            total += len(rec.constituents)
            handles += 1
        else:
            total += 1
    assert total == len(sum_trace.records)
    assert handles > 0


def test_fold_with_empty_plan_is_identity_modulo_pcs(sum_trace):
    records = fold_trace(sum_trace, empty_plan())
    assert len(records) == len(sum_trace.records)
    for folded, original in zip(records, sum_trace.records):
        assert folded.kind == 0
        assert folded.pc == original.pc      # no compaction
        assert folded.op == original.op
        assert folded.addr == original.addr


def test_handle_interface_fields(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    records = fold_trace(sum_trace, plan)
    handle = next(r for r in records if r.kind == 1)
    assert isinstance(handle, MGHandleRecord)
    candidate = handle.site.candidate
    assert handle.rd == candidate.out_reg
    assert len(handle.srcs) == len(candidate.ext_inputs)
    assert handle.pc == handle.site.handle_pc
    if handle.site.template.has_load or handle.site.template.has_store:
        assert handle.addr >= 0
    else:
        assert handle.addr == -1


def test_handle_next_pc_continuity(sum_loop, sum_trace):
    """Each record's next_pc must equal the next record's pc."""
    plan = _plan_for(sum_loop, sum_trace)
    records = fold_trace(sum_trace, plan)
    for current, following in zip(records, records[1:]):
        assert current.next_pc == following.pc


def test_branch_in_handle_records_outcome(branchy_loop, branchy_trace):
    plan = make_plan(branchy_loop, branchy_trace.dynamic_count_of(),
                     StructAll())
    records = fold_trace(branchy_trace, plan)
    handles = [r for r in records if r.kind == 1
               and r.site.template.has_branch]
    if handles:  # branch-ended mini-graphs selected
        takens = {h.taken for h in handles}
        assert takens <= {True, False}
        for handle in handles:
            if not handle.taken:
                assert handle.next_pc == handle.pc + 1


def test_fold_is_deterministic(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    first = fold_trace(sum_trace, plan)
    second = fold_trace(sum_trace, plan)
    assert [(r.pc, r.kind) for r in first] == \
        [(r.pc, r.kind) for r in second]


def test_fold_different_programs_independent():
    program_a = build_sum_loop(16, "a")
    program_b = build_sum_loop(24, "b")
    trace_a = execute(program_a)
    trace_b = execute(program_b)
    plan_a = _plan_for(program_a, trace_a)
    plan_b = _plan_for(program_b, trace_b)
    records_a = fold_trace(trace_a, plan_a)
    records_b = fold_trace(trace_b, plan_b)
    assert len(records_a) != len(records_b)
