"""Outlining transform: binary layout and trace folding."""

from repro.check.lockstep import lockstep_check
from repro.isa.interp import execute
from repro.minigraph import (
    StructAll, empty_plan, enumerate_candidates, fold_trace, make_plan,
)
from repro.minigraph.selection import MiniGraphPlan
from repro.minigraph.templates import build_templates
from repro.minigraph.transform import MGHandleRecord, TransformedBinary

from tests.conftest import build_sum_loop


def _plan_for(program, trace):
    return make_plan(program, trace.dynamic_count_of(), StructAll())


def test_layout_compacts_binary(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    assert plan.sites, "expected at least one selected site"
    binary = TransformedBinary(sum_loop, plan)
    embedded = sum(site.end - site.start for site in plan.sites)
    assert binary.new_length == len(sum_loop) - embedded + len(plan.sites)
    # PC map is monotonic and handles collapse to one slot.
    last = -1
    for pc in range(len(sum_loop)):
        assert binary.pc_map[pc] >= last
        last = binary.pc_map[pc]


def test_outlined_bodies_beyond_program(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    binary = TransformedBinary(sum_loop, plan)
    for site in plan.sites:
        assert site.outlined_pc >= binary.new_length
    spans = sorted((s.outlined_pc, s.outlined_pc + (s.end - s.start) + 1)
                   for s in plan.sites)
    for (_, end1), (start2, _) in zip(spans, spans[1:]):
        assert end1 <= start2  # outlined bodies do not collide


def test_fold_preserves_instruction_accounting(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    records = fold_trace(sum_trace, plan)
    total = 0
    handles = 0
    for rec in records:
        if rec.kind == 1:
            total += len(rec.constituents)
            handles += 1
        else:
            total += 1
    assert total == len(sum_trace.records)
    assert handles > 0


def test_fold_with_empty_plan_is_identity_modulo_pcs(sum_trace):
    records = fold_trace(sum_trace, empty_plan())
    assert len(records) == len(sum_trace.records)
    for folded, original in zip(records, sum_trace.records):
        assert folded.kind == 0
        assert folded.pc == original.pc      # no compaction
        assert folded.op == original.op
        assert folded.addr == original.addr


def test_handle_interface_fields(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    records = fold_trace(sum_trace, plan)
    handle = next(r for r in records if r.kind == 1)
    assert isinstance(handle, MGHandleRecord)
    candidate = handle.site.candidate
    assert handle.rd == candidate.out_reg
    assert len(handle.srcs) == len(candidate.ext_inputs)
    assert handle.pc == handle.site.handle_pc
    if handle.site.template.has_load or handle.site.template.has_store:
        assert handle.addr >= 0
    else:
        assert handle.addr == -1


def test_handle_next_pc_continuity(sum_loop, sum_trace):
    """Each record's next_pc must equal the next record's pc."""
    plan = _plan_for(sum_loop, sum_trace)
    records = fold_trace(sum_trace, plan)
    for current, following in zip(records, records[1:]):
        assert current.next_pc == following.pc


def test_branch_in_handle_records_outcome(branchy_loop, branchy_trace):
    plan = make_plan(branchy_loop, branchy_trace.dynamic_count_of(),
                     StructAll())
    records = fold_trace(branchy_trace, plan)
    handles = [r for r in records if r.kind == 1
               and r.site.template.has_branch]
    if handles:  # branch-ended mini-graphs selected
        takens = {h.taken for h in handles}
        assert takens <= {True, False}
        for handle in handles:
            if not handle.taken:
                assert handle.next_pc == handle.pc + 1


def test_fold_is_deterministic(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    first = fold_trace(sum_trace, plan)
    second = fold_trace(sum_trace, plan)
    assert [(r.pc, r.kind) for r in first] == \
        [(r.pc, r.kind) for r in second]


def _manual_plan(trace, picks):
    """A plan from hand-picked candidates (bypasses selection)."""
    templates = build_templates(list(picks), trace.dynamic_count_of())
    sites = [site for template in templates for site in template.sites]
    return MiniGraphPlan(sites, templates)


def _build_back_to_back():
    """Two independent 2-instruction groups with no gap between them."""
    from repro.isa import Assembler
    a = Assembler("b2b")
    a.data_zeros(2, label="out")
    out = a.data_addr("out")
    a.li("r1", 5)
    a.li("r2", 7)
    a.slli("r3", "r1", 1)    # group 1: r3 interior,
    a.add("r4", "r3", "r1")  #          r4 the live output
    a.slli("r5", "r2", 1)    # group 2, immediately adjacent
    a.add("r6", "r5", "r2")
    a.st("r4", "r0", out)
    a.st("r6", "r0", out + 1)
    a.halt()
    return a.build()


def test_fold_back_to_back_minigraphs():
    """Two immediately adjacent mini-graphs fold into adjacent handles
    with no singleton between them and an unbroken next_pc chain."""
    program = _build_back_to_back()
    trace = execute(program)
    candidates = enumerate_candidates(program)
    first, second = next(
        (a, b) for a in candidates for b in candidates
        if a.end == b.start)
    plan = _manual_plan(trace, [first, second])
    records = fold_trace(trace, plan)
    pairs = [(x, y) for x, y in zip(records, records[1:])
             if x.kind == 1 and y.kind == 1
             and x.site.start == first.start
             and y.site.start == second.start]
    assert pairs, "expected adjacent handle records"
    for x, y in pairs:
        assert x.next_pc == y.pc
        assert y.pc == x.pc + 1  # handles are one slot each, no gap
    total = sum(len(r.constituents) if r.kind == 1 else 1
                for r in records)
    assert total == len(trace.records)
    assert lockstep_check(program, plan, trace=trace).ok


def test_fold_minigraph_ending_block_at_taken_branch(sum_loop, sum_trace):
    """A mini-graph whose final constituent is the block-ending branch:
    the handle must carry the branch outcome and redirect to the
    transformed-space target when taken."""
    branch_pc, branch = next(
        (pc, inst) for pc, inst in enumerate(sum_loop.instructions)
        if inst.is_branch)
    candidate = next(c for c in enumerate_candidates(sum_loop)
                     if c.end == branch_pc + 1
                     and c.instructions()[-1].is_branch)
    plan = _manual_plan(sum_trace, [candidate])
    records = fold_trace(sum_trace, plan)
    handles = [r for r in records if r.kind == 1]
    assert handles
    outcomes = {h.taken for h in handles}
    assert outcomes == {True, False}  # loop back-edge plus final exit
    binary = TransformedBinary(sum_loop, plan)
    for handle in handles:
        if handle.taken:
            assert handle.next_pc == binary.pc_map[branch.imm]
        else:
            assert handle.next_pc == handle.pc + 1
    assert lockstep_check(sum_loop, plan, trace=sum_trace).ok


def test_fold_different_programs_independent():
    program_a = build_sum_loop(16, "a")
    program_b = build_sum_loop(24, "b")
    trace_a = execute(program_a)
    trace_b = execute(program_b)
    plan_a = _plan_for(program_a, trace_a)
    plan_b = _plan_for(program_b, trace_b)
    records_a = fold_trace(trace_a, plan_a)
    records_b = fold_trace(trace_b, plan_b)
    assert len(records_a) != len(records_b)
