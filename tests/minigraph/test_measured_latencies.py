"""The measured-latency extension (the paper's §5.1 *mcf* footnote).

Slack-Profile's rule #2 uses optimistic nominal latencies — a load inside
a mini-graph is assumed to hit. The extension substitutes each
constituent's *profiled* latency (``out_ready − issue``), so aggregates
built around missing loads are assessed with their real serial cost.
"""

from repro.isa import Assembler
from repro.minigraph import SlackProfileSelector, enumerate_candidates
from repro.minigraph.delay_model import assess
from repro.minigraph.slack import ProfileEntry, SlackProfile


def _load_chain_program():
    a = Assembler("t")
    a.data_zeros(8)
    a.li("r1", 1)              # 0
    a.li("r2", 2)              # 1
    a.add("r4", "r1", "r2")    # 2: address compute
    a.ld("r5", "r4", 0)        # 3: the (missing) load
    a.add("r6", "r5", "r5")    # 4: output
    a.st("r6", "r0", 0)        # 5
    a.halt()
    return a.build()


def _profile(load_latency: float, out_slack: float) -> SlackProfile:
    """Singleton schedule where the load's observed latency is given."""
    t_ld = 1.0
    t_out = t_ld + load_latency
    entries = {
        2: ProfileEntry(2, 10, 0.0, (0.0, 0.0), 1.0, 0.0, 0),
        3: ProfileEntry(3, 10, t_ld, (1.0,), t_out, 0.0, 0),
        4: ProfileEntry(4, 10, t_out, (t_out, t_out), t_out + 1,
                        out_slack, int(out_slack)),
    }
    return SlackProfile("t", "reduced", "train", entries)


def _candidate():
    program = _load_chain_program()
    return next(c for c in enumerate_candidates(program)
                if (c.start, c.end) == (2, 5))


def test_nominal_model_underestimates_missing_load():
    """With a 15-cycle observed load, the nominal chain (1+3+1) predicts
    the output at 5 while the singleton schedule has it at 17: the nominal
    delay is hugely negative (no degradation flagged)."""
    candidate = _candidate()
    nominal = assess(candidate, _profile(15.0, 4.0))
    assert nominal is not None
    assert not nominal.degrades
    assert nominal.delays[2] < 0  # predicted *earlier* than reality


def test_measured_model_sees_the_real_chain():
    candidate = _candidate()
    measured = assess(candidate, _profile(15.0, 4.0),
                      measured_latencies=True)
    # Output delay reflects the 15-cycle load: chain = 1 + 15 from issue 0
    # vs singleton issue 16 — still no delay for a pure chain...
    assert abs(measured.delays[2]) < 1e-9


def test_measured_model_rejects_serialized_missing_load():
    """Add a late serializing input: the aggregate then re-times the whole
    measured chain behind it, which the nominal model underestimates."""
    a = Assembler("t")
    a.data_zeros(8)
    a.li("r1", 1)              # 0
    a.li("r2", 2)              # 1
    a.li("r7", 3)              # 2  late value (pretend)
    a.add("r4", "r1", "r2")    # 3
    a.ld("r5", "r4", 0)        # 4
    a.add("r6", "r5", "r7")    # 5: serializing input r7 at offset 2
    a.st("r6", "r0", 0)        # 6
    a.halt()
    program = a.build()
    candidate = next(c for c in enumerate_candidates(program)
                     if (c.start, c.end) == (3, 6))

    t_ld, load_lat = 1.0, 15.0
    t_out = t_ld + load_lat
    entries = {
        3: ProfileEntry(3, 10, 0.0, (0.0, 0.0), 1.0, 0.0, 0),
        4: ProfileEntry(4, 10, t_ld, (1.0,), t_out, 0.0, 0),
        # The serializing input is ready at 6 — after the first
        # constituent's issue (0), before the load returns (16).
        5: ProfileEntry(5, 10, t_out, (t_out, 6.0), t_out + 1, 4.0, 4),
    }
    profile = SlackProfile("t", "reduced", "train", entries)

    nominal = assess(candidate, profile)
    measured = assess(candidate, profile, measured_latencies=True)
    # Rule #1 moves Issue_MG(0) to 6 in both; the chain to the output is
    # 1+3 nominally (delay 10-16 = negative) but 1+15 measured
    # (delay 22-16 = 6 > slack 4).
    assert not nominal.degrades
    assert measured.degrades


def test_selector_flag_changes_name_and_pool():
    program = _load_chain_program()
    selector = SlackProfileSelector(measured_latencies=True)
    assert selector.name == "slack-profile-measured"
    assert selector.measured_latencies
