"""Figure 5: the paper's worked delay-model example (mini-graph BDE).

Singleton schedule (cycles relative to the block anchor):

* A issues at 1, its value ready at 2;
* C issues at 5, its value ready at 6;
* B (reads A)      issues at 2;
* D (reads B, C)   issues at 6;
* E (reads D)      issues at 7.

Forming mini-graph BDE: rule #1 gives Issue_MG(B) = max(2, 2, 6) = 6;
rule #2 gives Issue_MG(D) = 7 and Issue_MG(E) = 8; rule #3 gives
Delay(E) = 1. With local slack 0 on E, rule #4 rejects BDE — exactly the
paper's outcome ("E has a local slack of 0 cycles, and its delay is
propagated to F").
"""

import pytest

from repro.isa import Assembler
from repro.minigraph import enumerate_candidates
from repro.minigraph.delay_model import assess
from repro.minigraph.slack import ProfileEntry, SlackProfile


def _bde_program():
    a = Assembler("fig5")
    a.data_zeros(2)
    a.li("r1", 10)             # 0: "A" produces r1
    a.li("r2", 20)             # 1: "C" produces r2
    a.add("r4", "r1", "r1")    # 2: B
    a.add("r5", "r4", "r2")    # 3: D (serializing input r2)
    a.add("r6", "r5", "r5")    # 4: E (the register output)
    a.st("r6", "r0", 0)        # 5: F consumes E
    a.halt()
    return a.build()


def _bde_candidate(program):
    return next(c for c in enumerate_candidates(program)
                if (c.start, c.end) == (2, 5))


def _profile(e_slack: float) -> SlackProfile:
    entries = {
        2: ProfileEntry(2, 10, 2.0, (2.0, 2.0), 3.0, 10.0, 8),    # B
        3: ProfileEntry(3, 10, 6.0, (3.0, 6.0), 7.0, 10.0, 8),    # D
        4: ProfileEntry(4, 10, 7.0, (7.0, 7.0), 8.0, e_slack,
                        int(e_slack)),                            # E
    }
    return SlackProfile("fig5", "reduced", "train", entries)


def test_rule1_external_serialization():
    program = _bde_program()
    assessment = assess(_bde_candidate(program), _profile(0.0))
    assert assessment is not None
    assert assessment.issue_mg[0] == 6.0     # max(2, 2, 6)


def test_rule2_internal_serialization():
    program = _bde_program()
    assessment = assess(_bde_candidate(program), _profile(0.0))
    assert assessment.issue_mg == [6.0, 7.0, 8.0]


def test_rule3_instruction_delay():
    program = _bde_program()
    assessment = assess(_bde_candidate(program), _profile(0.0))
    assert assessment.delays == [4.0, 1.0, 1.0]
    assert assessment.max_output_delay == 1.0


def test_rule4_rejects_with_zero_slack():
    program = _bde_program()
    assessment = assess(_bde_candidate(program), _profile(0.0))
    assert assessment.degrades            # the paper rejects BDE


def test_rule4_accepts_with_enough_slack():
    program = _bde_program()
    assessment = assess(_bde_candidate(program), _profile(2.0))
    assert not assessment.degrades        # delay 1 absorbed by slack 2


def test_delay_only_variant_still_rejects():
    program = _bde_program()
    assessment = assess(_bde_candidate(program), _profile(2.0))
    assert assessment.degrades_delay_only  # any delay > 0 rejects


def test_sial_variant_rejects():
    """The serializing input (C, ready 6) arrives last — SIAL rejects."""
    program = _bde_program()
    assessment = assess(_bde_candidate(program), _profile(2.0))
    assert assessment.degrades_sial


def test_unprofiled_candidate_returns_none():
    program = _bde_program()
    empty = SlackProfile("fig5", "reduced", "train", {})
    assert assess(_bde_candidate(program), empty) is None


def test_never_ready_input_treated_as_early():
    """src_ready None means the operand was architecturally old: rule #1
    reduces to Issue(0)."""
    program = _bde_program()
    entries = {
        2: ProfileEntry(2, 10, 2.0, (None, None), 3.0, 10.0, 8),
        3: ProfileEntry(3, 10, 3.0, (3.0, None), 4.0, 10.0, 8),
        4: ProfileEntry(4, 10, 4.0, (4.0, 4.0), 5.0, 0.0, 0),
    }
    profile = SlackProfile("fig5", "reduced", "train", entries)
    assessment = assess(_bde_candidate(program), profile)
    assert assessment.issue_mg[0] == 2.0   # no late input: issue unchanged
    # The singleton schedule was already back-to-back serial, so internal
    # serialization adds nothing: no delay anywhere.
    assert assessment.delays == [0.0, 0.0, 0.0]
    assert not assessment.degrades


def test_delay_tolerance():
    program = _bde_program()
    loose = assess(_bde_candidate(program), _profile(0.0),
                   delay_tolerance=2.0)
    assert not loose.degrades


def test_outputs_include_store_and_branch():
    a = Assembler("t")
    a.data_zeros(2)
    a.li("r1", 1)
    a.li("r2", 2)
    a.add("r4", "r1", "r1")    # 2
    a.st("r4", "r2", 0)        # 3: store output
    a.halt()
    program = a.build()
    candidate = next(c for c in enumerate_candidates(program)
                     if (c.start, c.end) == (2, 4))
    entries = {
        2: ProfileEntry(2, 5, 0.0, (0.0, 0.0), 1.0, 10.0, 9),
        3: ProfileEntry(3, 5, 1.0, (5.0, 1.0), None, 0.0, 0),
    }
    profile = SlackProfile("t", "reduced", "train", entries)
    assessment = assess(candidate, profile)
    assert 1 in assessment.output_indices  # the store is an output
