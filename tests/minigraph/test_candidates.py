"""Candidate enumeration under the mini-graph interface constraints."""

from repro.isa import Assembler
from repro.minigraph import SerializationClass, enumerate_candidates


def _program_with_block(body):
    a = Assembler("t")
    a.data_zeros(8)
    a.li("r1", 1)
    a.li("r2", 2)
    a.li("r3", 3)
    body(a)
    a.halt()
    return a.build()


def test_basic_enumeration():
    def body(a):
        a.add("r4", "r1", "r2")
        a.add("r5", "r4", "r3")
        a.st("r5", "r0", 0)

    program = _program_with_block(body)
    candidates = enumerate_candidates(program)
    spans = {(c.start, c.end) for c in candidates}
    assert (3, 5) in spans            # the two adds
    assert (3, 6) in spans            # adds + store
    assert all(c.size >= 2 for c in candidates)


def test_size_limit():
    def body(a):
        for _ in range(6):
            a.add("r4", "r1", "r2")

    program = _program_with_block(body)
    candidates = enumerate_candidates(program, max_size=4)
    assert max(c.size for c in candidates) == 4


def test_complex_ops_not_aggregable():
    def body(a):
        a.add("r4", "r1", "r2")
        a.mul("r5", "r4", "r3")
        a.add("r6", "r5", "r1")
        a.st("r6", "r0", 0)

    program = _program_with_block(body)
    candidates = enumerate_candidates(program)
    for candidate in candidates:
        ops = [i.opclass for i in candidate.instructions()]
        from repro.isa.opcodes import OC_COMPLEX
        assert OC_COMPLEX not in ops


def test_at_most_one_memory_op():
    def body(a):
        a.ld("r4", "r1", 0)
        a.ld("r5", "r2", 0)
        a.add("r6", "r4", "r5")
        a.st("r6", "r0", 0)

    program = _program_with_block(body)
    for candidate in enumerate_candidates(program):
        mems = sum(1 for i in candidate.instructions() if i.is_memory)
        assert mems <= 1


def test_branch_only_last():
    def body(a):
        a.add("r4", "r1", "r2")
        a.bne("r4", "r0", "skip")
        a.add("r5", "r1", "r3")
        a.label("skip")
        a.st("r1", "r0", 0)

    program = _program_with_block(body)
    for candidate in enumerate_candidates(program):
        for offset, inst in enumerate(candidate.instructions()):
            if inst.is_branch:
                assert offset == candidate.size - 1


def test_max_three_external_inputs():
    def body(a):
        a.li("r4", 4)
        a.li("r5", 5)
        a.add("r6", "r1", "r2")
        a.add("r7", "r3", "r4")
        a.add("r8", "r6", "r7")
        a.add("r9", "r8", "r5")
        a.st("r9", "r0", 0)

    program = _program_with_block(body)
    for candidate in enumerate_candidates(program):
        assert len(candidate.ext_inputs) <= 3


def test_at_most_one_register_output():
    def body(a):
        a.add("r4", "r1", "r2")   # r4 live below
        a.add("r5", "r1", "r3")   # r5 live below
        a.st("r4", "r0", 0)
        a.st("r5", "r0", 1)

    program = _program_with_block(body)
    spans = {(c.start, c.end) for c in enumerate_candidates(program)}
    assert (3, 5) not in spans    # two live outputs — illegal


def test_confined_to_basic_blocks():
    def body(a):
        a.add("r4", "r1", "r2")
        a.label("mid")            # a branch target splits the block
        a.add("r5", "r4", "r3")
        a.bne("r5", "r0", "mid")

    program = _program_with_block(body)
    for candidate in enumerate_candidates(program):
        block = program.block_of(candidate.start)
        assert candidate.end <= block.end


def test_serialization_classes_assigned():
    def body(a):
        # Chain: ext inputs only into the first constituent -> NONE.
        a.add("r4", "r1", "r2")
        a.add("r5", "r4", "r4")
        a.st("r5", "r0", 0)
        # Serializing: r3 into the second constituent.
        a.add("r6", "r1", "r1")
        a.add("r7", "r6", "r3")
        a.st("r7", "r0", 1)

    program = _program_with_block(body)
    classes = {(c.start, c.end): c.serialization
               for c in enumerate_candidates(program)}
    assert classes[(3, 5)] is SerializationClass.NONE
    assert classes[(6, 8)] in (SerializationClass.BOUNDED,
                               SerializationClass.UNBOUNDED)


def test_candidate_latency_fields():
    def body(a):
        a.ld("r4", "r1", 0)
        a.add("r5", "r4", "r2")
        a.add("r6", "r5", "r5")
        a.st("r6", "r0", 0)

    program = _program_with_block(body)
    candidate = next(c for c in enumerate_candidates(program)
                     if (c.start, c.end) == (3, 6))
    assert candidate.latencies == (3, 1, 1)
    assert candidate.total_latency == 5
    assert candidate.has_load and not candidate.has_store
    assert candidate.out_reg == 6
    assert candidate.nominal_out_latency == 5


def test_nominal_out_latency_partial_chain():
    def body(a):
        a.add("r4", "r1", "r2")   # produces the output
        a.add("r5", "r4", "r3")   # r5 dead (overwritten below)
        a.st("r4", "r0", 0)
        a.li("r5", 0)
        a.st("r5", "r0", 1)

    program = _program_with_block(body)
    candidate = next(c for c in enumerate_candidates(program)
                     if (c.start, c.end) == (3, 5))
    assert candidate.out_producer_ix == 0
    assert candidate.nominal_out_latency == 1
