"""Test package."""
