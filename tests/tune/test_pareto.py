"""Pareto reduction properties: the frontier has no dominated point."""

import random

from repro.tune.pareto import (
    OBJECTIVES, crowding_order, dominates, pareto_front,
)


def _entry(coverage, ipc_norm, read_ports):
    return {"coverage": coverage, "ipc_norm": ipc_norm,
            "read_ports": read_ports}


def test_dominates_is_strict():
    a = _entry(0.5, 1.10, 1.0)
    b = _entry(0.4, 1.05, 1.5)
    assert dominates(a, b)
    assert not dominates(b, a)
    assert not dominates(a, a)          # equal vectors never dominate
    # Trade-off: better coverage vs. better port demand — incomparable.
    c = _entry(0.6, 1.00, 2.0)
    d = _entry(0.3, 1.00, 0.5)
    assert not dominates(c, d) and not dominates(d, c)


def test_min_sense_objective_orientation():
    """read_ports is minimized: fewer ports dominates, more never does."""
    lean = _entry(0.5, 1.0, 0.5)
    hungry = _entry(0.5, 1.0, 2.5)
    assert dominates(lean, hungry)
    assert not dominates(hungry, lean)


def test_frontier_has_no_dominated_point_property():
    """Seeded random clouds: frontier members dominate-free, every
    dominated entry loses to some frontier member (transitivity)."""
    rng = random.Random(1234)
    for _round in range(25):
        entries = [_entry(round(rng.uniform(0, 1), 2),
                          round(rng.uniform(0.8, 1.3), 2),
                          round(rng.uniform(0, 3), 2))
                   for _ in range(rng.randrange(1, 40))]
        frontier, dominated = pareto_front(entries, OBJECTIVES)
        assert len(frontier) + len(dominated) == len(entries)
        assert frontier                      # never empty for non-empty input
        for entry in frontier:
            assert not any(dominates(other, entry)
                           for other in entries)
        for entry in dominated:
            assert any(dominates(member, entry) for member in frontier)


def test_identical_vectors_all_stay_on_frontier():
    twin_a = _entry(0.5, 1.1, 1.0)
    twin_b = _entry(0.5, 1.1, 1.0)
    loser = _entry(0.4, 1.0, 2.0)
    frontier, dominated = pareto_front([twin_a, twin_b, loser])
    assert frontier == [twin_a, twin_b]
    assert dominated == [loser]


def test_frontier_is_input_order_independent():
    rng = random.Random(7)
    entries = [_entry(rng.uniform(0, 1), rng.uniform(0.9, 1.2),
                      rng.uniform(0, 3)) for _ in range(20)]
    shuffled = entries[:]
    rng.shuffle(shuffled)
    front_a, _ = pareto_front(entries)
    front_b, _ = pareto_front(shuffled)
    key = lambda e: (e["coverage"], e["ipc_norm"], e["read_ports"])
    assert sorted(map(key, front_a)) == sorted(map(key, front_b))


def test_crowding_order_sorts_by_ipc_first():
    entries = [_entry(0.9, 1.00, 0.1), _entry(0.2, 1.20, 2.0),
               _entry(0.5, 1.10, 1.0)]
    ordered = crowding_order(entries)
    assert [e["ipc_norm"] for e in ordered] == [1.20, 1.10, 1.00]
