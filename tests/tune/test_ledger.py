"""Tuning ledger: journal round-trip, torn tails, mismatch refusal."""

import json

import pytest

from repro.tune.evaluate import TrialEval
from repro.tune.ledger import TUNE_LEDGER_VERSION, TuneLedger, TuneLedgerError

RUNNER = {"budget": 512, "max_insts": 200_000}


def _entry(trial_id, rung=200_000, ipc_norm=1.05):
    return TrialEval(
        trial_id=trial_id, selector={"kind": "struct-all"},
        display_name="struct-all", config="reduced", rung=rung,
        coverage=0.42, ipc_norm=ipc_norm, read_ports=1.25,
        per_bench=[{"bench": "crc32", "ipc_norm": ipc_norm}])


def test_create_record_resume_round_trip(tmp_path):
    path = tmp_path / "tune.jsonl"
    with TuneLedger.create(path, "s" * 16, "salt", RUNNER) as ledger:
        ledger.record(_entry("aaaa", rung=50_000))
        ledger.record(_entry("aaaa"))
        ledger.record(_entry("bbbb", ipc_norm=0.98))
    reopened, completed = TuneLedger.resume(path, "s" * 16, "salt", RUNNER)
    reopened.close()
    assert set(completed) == {("aaaa", 50_000), ("aaaa", 200_000),
                              ("bbbb", 200_000)}
    got = completed[("bbbb", 200_000)]
    assert got == _entry("bbbb", ipc_norm=0.98)


def test_resume_appends_rather_than_truncates(tmp_path):
    path = tmp_path / "tune.jsonl"
    TuneLedger.create(path, "d1", "salt", RUNNER).close()
    ledger, completed = TuneLedger.open(path, "d1", "salt", RUNNER,
                                        resume=True)
    assert completed == {}
    ledger.record(_entry("aaaa"))
    ledger.close()
    _, completed = TuneLedger.resume(path, "d1", "salt", RUNNER)
    assert ("aaaa", 200_000) in completed


def test_open_without_resume_starts_fresh(tmp_path):
    path = tmp_path / "tune.jsonl"
    with TuneLedger.create(path, "d1", "salt", RUNNER) as ledger:
        ledger.record(_entry("aaaa"))
    ledger, completed = TuneLedger.open(path, "d1", "salt", RUNNER,
                                        resume=False)
    ledger.close()
    assert completed == {}
    _, completed = TuneLedger.resume(path, "d1", "salt", RUNNER)
    assert completed == {}              # file was truncated


def test_torn_tail_is_ignored(tmp_path):
    """A SIGKILL mid-write leaves a half line; replay drops it."""
    path = tmp_path / "tune.jsonl"
    with TuneLedger.create(path, "d1", "salt", RUNNER) as ledger:
        ledger.record(_entry("aaaa"))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"type": "trial", "trial": "bb')   # torn
    _, completed = TuneLedger.resume(path, "d1", "salt", RUNNER)
    assert set(completed) == {("aaaa", 200_000)}


def test_duplicate_records_last_wins(tmp_path):
    path = tmp_path / "tune.jsonl"
    with TuneLedger.create(path, "d1", "salt", RUNNER) as ledger:
        ledger.record(_entry("aaaa", ipc_norm=1.00))
        ledger.record(_entry("aaaa", ipc_norm=1.10))
    _, completed = TuneLedger.resume(path, "d1", "salt", RUNNER)
    assert completed[("aaaa", 200_000)].ipc_norm == 1.10


@pytest.mark.parametrize("field,other", [
    ("space", "f" * 16),
    ("salt", "other-salt"),
    ("runner", {"budget": 512, "max_insts": 50_000}),
])
def test_mismatched_header_is_refused(tmp_path, field, other):
    path = tmp_path / "tune.jsonl"
    TuneLedger.create(path, "d1", "salt", RUNNER).close()
    ours = {"space": "d1", "salt": "salt", "runner": RUNNER, field: other}
    with pytest.raises(TuneLedgerError) as excinfo:
        TuneLedger.resume(path, ours["space"], ours["salt"],
                          ours["runner"])
    assert field in str(excinfo.value)


def test_version_skew_is_refused(tmp_path):
    path = tmp_path / "tune.jsonl"
    header = {"type": "tune", "version": TUNE_LEDGER_VERSION + 1,
              "space": "d1", "salt": "salt", "runner": RUNNER}
    path.write_text(json.dumps(header) + "\n")
    with pytest.raises(TuneLedgerError):
        TuneLedger.resume(path, "d1", "salt", RUNNER)


def test_headerless_file_is_refused(tmp_path):
    path = tmp_path / "tune.jsonl"
    path.write_text('{"type": "trial"}\n')
    with pytest.raises(TuneLedgerError):
        TuneLedger.resume(path, "d1", "salt", RUNNER)


def test_missing_file_is_refused(tmp_path):
    with pytest.raises(TuneLedgerError):
        TuneLedger.resume(tmp_path / "nope.jsonl", "d1", "salt", RUNNER)
