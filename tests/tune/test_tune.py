"""End-to-end ``run_tune``: determinism, warm stores, ledger resume."""

import pytest

from repro.exec.store import ArtifactStore
from repro.tune import SearchSpace, pareto_front, run_tune
from repro.tune.ledger import TuneLedgerError
from repro.tune.pareto import dominates
from repro.tune.report import load_doc, render_table, tune_doc, write_doc

MAX_INSTS = 60_000

SPACE = SearchSpace.from_doc({
    "benchmarks": ["crc32"],
    "selectors": [{"kind": "struct-all"}, {"kind": "struct-none"},
                  {"kind": "read-port", "port_budget": [0, 2]}],
    "configs": ["reduced"],
})


def _tune(**kwargs):
    kwargs.setdefault("max_insts", MAX_INSTS)
    return run_tune(SPACE, **kwargs)


def _docs(result):
    return [e.to_doc() for e in result.evals]


def test_grid_covers_space_and_is_deterministic():
    first = _tune()
    again = _tune()
    assert len(first.evals) == len(SPACE) == 4
    assert _docs(first) == _docs(again)
    assert [e.trial_id for e in first.frontier] \
        == [e.trial_id for e in again.frontier]
    assert first.stats.evaluations == 4
    assert first.stats.rungs == 1


def test_frontier_contains_no_dominated_point():
    result = _tune()
    assert result.frontier
    assert result.stats.frontier_size + result.stats.dominated \
        == len(result.evals)
    for entry in result.frontier:
        assert not any(dominates(other, entry) for other in result.evals)
    for entry in result.dominated:
        assert any(dominates(member, entry)
                   for member in result.frontier)


def test_selector_aggressiveness_orders_objectives():
    """struct-none (shape-safe only) never out-covers struct-all, and a
    zero-port-budget read-port selector never out-covers it either."""
    result = _tune()
    by_name = {e.display_name: e for e in result.evals
               if e.config == "reduced"}
    all_cov = by_name["struct-all"].coverage
    assert all_cov > 0.0
    assert by_name["struct-none"].coverage <= all_cov
    assert by_name["read-port(b=0,w=1)"].coverage <= all_cov


def test_warm_store_rerun_recomputes_nothing():
    store = ArtifactStore()
    first = _tune(store=store)
    misses_after_first = store.stats.misses
    again = _tune(store=store)
    assert store.stats.misses == misses_after_first   # all warm hits
    assert again.stats.store_misses == 0
    assert _docs(first) == _docs(again)


def test_ledger_resume_schedules_zero_trials(tmp_path):
    path = tmp_path / "tune.jsonl"
    first = _tune(ledger_path=path)
    assert first.stats.evaluations == 4
    resumed = _tune(ledger_path=path, resume=True)
    assert resumed.stats.evaluations == 0
    assert resumed.stats.resumed == 4
    assert _docs(resumed) == _docs(first)
    assert [e.trial_id for e in resumed.frontier] \
        == [e.trial_id for e in first.frontier]


def test_partial_ledger_completes_the_rest(tmp_path):
    """Losing the tail of a journal costs only the missing trials."""
    path = tmp_path / "tune.jsonl"
    _tune(ledger_path=path)
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:3]) + "\n")   # header + 2 trials
    resumed = _tune(ledger_path=path, resume=True)
    assert resumed.stats.resumed == 2
    assert resumed.stats.evaluations == 2
    assert len(resumed.evals) == 4


def test_resume_refuses_a_foreign_ledger(tmp_path):
    path = tmp_path / "tune.jsonl"
    _tune(ledger_path=path)
    other = SearchSpace.from_doc({"selectors": [{"kind": "struct-all"}],
                                  "configs": ["full"],
                                  "benchmarks": ["crc32"]})
    with pytest.raises(TuneLedgerError):
        run_tune(other, max_insts=MAX_INSTS, ledger_path=path,
                 resume=True)


def test_random_strategy_prefix_reuses_warm_work():
    store = ArtifactStore()
    small = _tune(store=store, strategy="random", trials=2, seed=9)
    large = _tune(store=store, strategy="random", trials=4, seed=9)
    assert [e.trial_id for e in large.evals[:2]] \
        == [e.trial_id for e in small.evals]


def test_halving_promotes_and_finishes_at_full_budget():
    store = ArtifactStore()
    result = _tune(store=store, strategy="halving",
                   max_insts=120_000, halving_min_insts=30_000,
                   halving_eta=2)
    assert result.stats.rungs == 3      # 30k, 60k, 120k
    assert result.evals                 # survivors reach the full budget
    assert all(e.rung == 120_000 for e in result.evals)
    assert len(result.evals) <= len(SPACE)


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError):
        _tune(strategy="simulated-annealing")


def test_report_doc_round_trip(tmp_path):
    result = _tune()
    doc = tune_doc(result.space, result.evals, result.frontier,
                   result.stats.as_dict())
    path = tmp_path / "tune.json"
    write_doc(path, doc)
    loaded = load_doc(path)
    assert loaded["space_digest"] == SPACE.digest()
    frontier_ids = {e.trial_id for e in result.frontier}
    assert set(loaded["frontier"]) == frontier_ids
    flags = {t["trial"]: t["frontier"] for t in loaded["trials"]}
    assert {tid for tid, on in flags.items() if on} == frontier_ids
    table = render_table(result.evals, result.frontier)
    assert "ipc_norm" in table and "*" in table


def test_render_mentions_every_trial():
    result = _tune()
    text = result.render()
    for entry in result.evals:
        assert entry.config in text
    assert f"{result.stats.evaluations} evaluated" in text
