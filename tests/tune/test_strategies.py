"""Strategy planning: determinism, prefix property, rung schedules."""

import pytest

from repro.tune.space import SearchSpace
from repro.tune.strategies import (
    halving_rungs, plan_grid, plan_random, survivors,
)

SPACE = SearchSpace.from_doc({
    "selectors": [
        {"kind": "struct-all"}, {"kind": "struct-none"},
        {"kind": "read-port", "port_budget": [0, 1, 2]},
    ],
    "configs": ["full", "reduced"],
})


def test_grid_is_enumeration_order():
    trials = SPACE.enumerate()
    assert plan_grid(trials) == trials


def test_random_is_deterministic_in_seed():
    trials = SPACE.enumerate()
    assert plan_random(trials, seed=3, n=6) \
        == plan_random(trials, seed=3, n=6)
    assert plan_random(trials, seed=3, n=len(trials)) \
        != plan_random(trials, seed=4, n=len(trials))


def test_random_is_incremental_in_n():
    """A bigger --trials keeps the smaller sample as its prefix."""
    trials = SPACE.enumerate()
    small = plan_random(trials, seed=11, n=3)
    large = plan_random(trials, seed=11, n=8)
    assert large[:3] == small


def test_random_is_order_independent():
    trials = SPACE.enumerate()
    assert plan_random(list(reversed(trials)), seed=5, n=4) \
        == plan_random(trials, seed=5, n=4)


def test_random_samples_without_replacement():
    trials = SPACE.enumerate()
    plan = plan_random(trials, seed=0, n=len(trials) + 10)
    assert len(plan) == len(trials)
    assert len({t.trial_id for t in plan}) == len(plan)


def test_random_rejects_nonpositive_n():
    with pytest.raises(ValueError):
        plan_random(SPACE.enumerate(), seed=0, n=0)


def test_halving_rungs_shape():
    assert halving_rungs(200_000, eta=2, min_insts=50_000) \
        == [50_000, 100_000, 200_000]
    assert halving_rungs(1_000_000, eta=4, min_insts=50_000) \
        == [62_500, 250_000, 1_000_000]
    # Budget already at/below the floor: a single full rung.
    assert halving_rungs(50_000, eta=2, min_insts=50_000) == [50_000]


def test_halving_rungs_end_at_full_budget():
    for eta in (2, 3):
        rungs = halving_rungs(2_000_000, eta=eta)
        assert rungs[-1] == 2_000_000
        assert rungs == sorted(rungs)


def test_halving_rejects_small_eta():
    with pytest.raises(ValueError):
        halving_rungs(1_000_000, eta=1)


def test_survivors_keep_ceil_fraction():
    trials = SPACE.enumerate()
    assert len(survivors(trials[:7], eta=2)) == 4
    assert len(survivors(trials[:6], eta=3)) == 2
    assert survivors(trials[:1], eta=2) == trials[:1]
    assert survivors(trials[:5], eta=2) == trials[:3]   # prefix of ranking
