"""Search-space parsing, expansion, and determinism."""

import json

import pytest

from repro.tune.space import (
    DEFAULT_SELECTOR_GRIDS, SearchSpace, Trial,
)

DOC = {
    "benchmarks": ["crc32", "dijkstra"],
    "input": "train",
    "selectors": [
        {"kind": "struct-all"},
        {"kind": "read-port", "port_budget": [0, 2],
         "pressure_weight": [1.0, 3.0]},
    ],
    "configs": ["full", "reduced"],
}


def test_expansion_counts():
    space = SearchSpace.from_doc(DOC)
    # (1 struct-all + 2*2 read-port) selectors × 2 configs
    assert len(space.enumerate()) == 10


def test_enumeration_is_deterministic():
    a = SearchSpace.from_doc(DOC).enumerate()
    b = SearchSpace.from_doc(json.loads(json.dumps(DOC))).enumerate()
    assert [t.trial_id for t in a] == [t.trial_id for t in b]


def test_digest_pins_the_space():
    assert SearchSpace.from_doc(DOC).digest() \
        == SearchSpace.from_doc(DOC).digest()
    other = dict(DOC, configs=["full"])
    assert SearchSpace.from_doc(other).digest() \
        != SearchSpace.from_doc(DOC).digest()


def test_trial_ids_are_content_addressed():
    trial = Trial(selector=(("kind", "struct-all"),), config="reduced")
    again = Trial(selector=(("kind", "struct-all"),), config="reduced")
    assert trial.trial_id == again.trial_id
    assert trial.trial_id != Trial(selector=(("kind", "struct-all"),),
                                   config="full").trial_id


def test_duplicate_trials_deduplicated():
    doc = dict(DOC, selectors=[{"kind": "struct-all"},
                               {"kind": "struct-all"}])
    space = SearchSpace.from_doc(doc)
    assert len(space.enumerate()) == 2   # one selector × two configs


def test_bare_kind_uses_default_grid():
    space = SearchSpace.from_doc({"selectors": [{"kind": "read-port"}],
                                  "configs": ["reduced"]})
    grid = DEFAULT_SELECTOR_GRIDS["read-port"]
    expected = len(grid["port_budget"]) * len(grid["pressure_weight"])
    assert len(space.enumerate()) == expected


def test_string_selector_entries():
    space = SearchSpace.from_doc({"selectors": ["struct-all",
                                                "struct-none"],
                                  "configs": ["reduced"]})
    assert len(space.enumerate()) == 2


def test_config_grid_expands_override_specs():
    space = SearchSpace.from_doc({
        "selectors": [{"kind": "struct-all"}],
        "config_grid": {"base": "reduced", "width": [2, 3],
                        "phys_regs": [100]},
    })
    assert set(space.configs) == {"reduced@phys_regs=100,width=2",
                                  "reduced@phys_regs=100,width=3"}


def test_from_cli_matches_from_doc():
    cli = SearchSpace.from_cli(["struct-all"], ["full"],
                               benchmarks=["crc32"])
    doc = SearchSpace.from_doc({"selectors": [{"kind": "struct-all"}],
                                "configs": ["full"],
                                "benchmarks": ["crc32"]})
    assert cli.digest() == doc.digest()


def test_json_file_round_trip(tmp_path):
    path = tmp_path / "space.json"
    path.write_text(json.dumps(DOC))
    assert SearchSpace.from_file(path).digest() \
        == SearchSpace.from_doc(DOC).digest()


def test_toml_file_round_trip(tmp_path):
    pytest.importorskip("tomllib")
    path = tmp_path / "space.toml"
    path.write_text(
        'benchmarks = ["crc32", "dijkstra"]\n'
        'input = "train"\n'
        'configs = ["full", "reduced"]\n'
        '[[selectors]]\nkind = "struct-all"\n'
        '[[selectors]]\nkind = "read-port"\n'
        'port_budget = [0, 2]\npressure_weight = [1.0, 3.0]\n')
    assert SearchSpace.from_file(path).digest() \
        == SearchSpace.from_doc(DOC).digest()


@pytest.mark.parametrize("doc", [
    {"selectors": [{"kind": "psychic"}]},
    {"selectors": [{"kind": "read-port", "port_budget": [-1]}]},
    {"configs": ["bogus"]},
    {"configs": ["reduced@nope=1"]},
    {"frobnicate": True},
    [],
])
def test_bad_documents_rejected(doc):
    with pytest.raises(ValueError):
        SearchSpace.from_doc(doc)


def test_bad_json_file_rejected(tmp_path):
    path = tmp_path / "space.json"
    path.write_text("{not json")
    with pytest.raises(ValueError):
        SearchSpace.from_file(path)
