"""Test package."""
