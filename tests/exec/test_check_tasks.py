"""Validation nodes in the experiment DAG (``experiments --check``)."""

import pytest

from repro.check.lint import PlanIssue
from repro.exec.dag import TaskError
from repro.exec.grid import (
    baseline_point, build_tasks, dynamic_point, run_points, selector_point,
)
from repro.harness.runner import Runner
from repro.minigraph.selectors import SlackProfileSelector, StructAll


def _points():
    return [baseline_point("crc32", "reduced"),
            selector_point("crc32", StructAll(), "reduced"),
            selector_point("crc32", SlackProfileSelector(), "reduced"),
            dynamic_point("crc32", "reduced")]


def test_build_tasks_without_check_has_no_check_stage():
    tasks = build_tasks(_points(), Runner())
    assert not [t for t in tasks if t.stage == "check"]


def test_build_tasks_adds_check_nodes():
    tasks = build_tasks(_points(), Runner(), check=True)
    checks = [t for t in tasks if t.stage == "check"]
    # struct-all + slack-profile, plus the slack-dynamic point's pool
    # plan; baselines have no plan to validate.
    assert len(checks) == 3
    by_id = {t.id: t for t in tasks}
    for task in checks:
        # Deterministic: a divergence cannot heal on retry.
        assert task.retries == 0
        stages = {by_id[dep].stage for dep in task.deps}
        assert stages == {"plan", "trace"}


def test_check_nodes_dedup_with_dynamic_points():
    # A slack-dynamic point folds the same struct-all-pool plan as its
    # static selector point — one check node covers both.
    points = [selector_point("crc32", {"kind": "slack-dynamic"}, "reduced"),
              dynamic_point("crc32", "reduced")]
    tasks = build_tasks(points, Runner(), check=True)
    assert len([t for t in tasks if t.stage == "check"]) == 1


def test_run_points_with_check_passes():
    report = run_points(Runner(), _points(), jobs=1, check=True,
                        raise_on_failure=True)
    assert not report.failures
    done_checks = {task_id: result for task_id, result
                   in report.results.items()
                   if task_id.startswith("check/")}
    assert len(done_checks) == 3
    for result in done_checks.values():
        assert result["records"] > 0


def test_run_points_check_catches_bad_plan(monkeypatch):
    def bad_lint(program, plan, **kwargs):
        return [PlanIssue(0, "injected", "deliberately broken for test")]

    monkeypatch.setattr("repro.exec.tasks.lint_plan", bad_lint,
                        raising=False)
    monkeypatch.setattr("repro.check.lint.lint_plan", bad_lint)
    with pytest.raises(TaskError) as exc:
        run_points(Runner(), _points(), jobs=1, check=True,
                   raise_on_failure=True)
    assert "injected" in str(exc.value)
    assert "check/" in str(exc.value)
