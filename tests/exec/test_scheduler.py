"""DAG scheduler: ordering, fan-out, retry, crash and timeout handling.

Task callables live at module level so the ``ProcessPoolExecutor`` can
pickle them; cross-process/cross-attempt state goes through sentinel
files in ``tmp_path``.
"""

import os
import time

import pytest

from repro.exec.dag import ProgressPrinter, Scheduler, Task, TaskError


def t_const(value):
    """Return a constant (trivial task body)."""
    return value


def t_sum(path, addend):
    """Append to a shared file-backed accumulator and return its length."""
    with open(path, "a") as handle:
        handle.write(f"{addend}\n")
    with open(path) as handle:
        return len(handle.readlines())


def t_fail_once(sentinel, value):
    """Raise on the first invocation (sentinel missing), succeed after."""
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as handle:
            handle.write("seen")
        raise ValueError("injected transient failure")
    return value


def t_always_fail():
    """Deterministic failure."""
    raise RuntimeError("injected permanent failure")


def t_crash_once(sentinel, value):
    """Kill the worker process outright on first invocation."""
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as handle:
            handle.write("seen")
        os._exit(13)  # hard death: no exception, no cleanup
    return value


def t_sleep(seconds):
    """Block long enough to trip a short scheduler timeout."""
    time.sleep(seconds)
    return "slept"


def _chain(n=3):
    return [Task(id=f"t{i}", fn=t_const, args=(i,),
                 deps=(f"t{i-1}",) if i else ())
            for i in range(n)]


# -- graph validation ---------------------------------------------------------

def test_duplicate_ids_rejected():
    tasks = [Task(id="a", fn=t_const, args=(1,)),
             Task(id="a", fn=t_const, args=(2,))]
    with pytest.raises(ValueError, match="duplicate"):
        Scheduler().run(tasks)


def test_unknown_dependency_rejected():
    with pytest.raises(ValueError, match="unknown"):
        Scheduler().run([Task(id="a", fn=t_const, args=(1,),
                              deps=("ghost",))])


def test_cycle_rejected():
    tasks = [Task(id="a", fn=t_const, args=(1,), deps=("b",)),
             Task(id="b", fn=t_const, args=(2,), deps=("a",))]
    with pytest.raises(ValueError, match="cycle"):
        Scheduler().run(tasks)


# -- serial execution ---------------------------------------------------------

def test_serial_runs_in_dependency_order(tmp_path):
    log = tmp_path / "log.txt"
    tasks = [Task(id="late", fn=t_sum, args=(str(log), "late"),
                  deps=("early",)),
             Task(id="early", fn=t_sum, args=(str(log), "early"))]
    report = Scheduler(jobs=1).run(tasks)
    assert log.read_text().splitlines() == ["early", "late"]
    assert report.results == {"early": 1, "late": 2}
    assert report.stage_tasks == {"task": 2}


def test_serial_retry_then_success(tmp_path):
    sentinel = str(tmp_path / "seen")
    report = Scheduler(jobs=1, retries=2, backoff=0.01).run(
        [Task(id="flaky", fn=t_fail_once, args=(sentinel, "ok"))])
    assert report.results == {"flaky": "ok"}
    assert report.retries == 1


def test_serial_failure_poisons_dependents():
    tasks = [Task(id="bad", fn=t_always_fail, retries=0),
             Task(id="child", fn=t_const, args=(1,), deps=("bad",)),
             Task(id="grandchild", fn=t_const, args=(2,), deps=("child",)),
             Task(id="independent", fn=t_const, args=(3,))]
    report = Scheduler(jobs=1).run(tasks, raise_on_failure=False)
    assert report.results == {"independent": 3}
    assert "injected permanent failure" in report.failures["bad"]
    assert "skipped" in report.failures["child"]
    assert "skipped" in report.failures["grandchild"]
    with pytest.raises(TaskError):
        Scheduler(jobs=1).run(tasks)


# -- parallel execution -------------------------------------------------------

def test_parallel_matches_serial_results():
    tasks = _chain(6) + [Task(id=f"x{i}", fn=t_const, args=(i * 10,))
                         for i in range(6)]
    serial = Scheduler(jobs=1).run(list(tasks)).results
    parallel = Scheduler(jobs=4).run(list(tasks)).results
    assert parallel == serial


def test_parallel_retry_on_worker_exception(tmp_path):
    sentinel = str(tmp_path / "seen")
    tasks = [Task(id="flaky", fn=t_fail_once, args=(sentinel, "ok")),
             Task(id="steady", fn=t_const, args=(7,))]
    report = Scheduler(jobs=2, retries=2, backoff=0.01).run(tasks)
    assert report.results == {"flaky": "ok", "steady": 7}
    assert report.retries == 1


def test_parallel_worker_crash_degrades_to_serial(tmp_path):
    sentinel = str(tmp_path / "seen")
    events = []
    tasks = [Task(id="crasher", fn=t_crash_once, args=(sentinel, "ok")),
             Task(id="steady", fn=t_const, args=(7,)),
             Task(id="child", fn=t_const, args=(8,), deps=("crasher",))]
    report = Scheduler(jobs=2, on_event=events.append).run(tasks)
    # The crash killed the pool; the survivor pass ran in-process and the
    # sentinel let the crasher succeed on its serial retry.
    assert report.degraded
    assert report.results["crasher"] == "ok"
    assert report.results["steady"] == 7
    assert report.results["child"] == 8
    assert any(event["kind"] == "degraded" for event in events)


def test_parallel_timeout_fails_stuck_task():
    tasks = [Task(id="stuck", fn=t_sleep, args=(30.0,), timeout=0.5),
             Task(id="quick", fn=t_const, args=(1,))]
    start = time.monotonic()
    report = Scheduler(jobs=2).run(tasks, raise_on_failure=False)
    assert time.monotonic() - start < 20.0  # did not wait the full sleep
    assert "timeout" in report.failures["stuck"]
    assert report.results["quick"] == 1


def test_events_carry_counts(tmp_path):
    events = []
    Scheduler(jobs=1, on_event=events.append).run(_chain(3))
    done = [event for event in events if event["kind"] == "done"]
    assert [event["done"] for event in done] == [1, 2, 3]
    assert all(event["total"] == 3 for event in done)


def test_progress_printer_smoke(capsys):
    printer = ProgressPrinter(min_interval=0.0)
    printer({"kind": "done", "task": "t0", "stage": "trace",
             "done": 1, "failed": 0, "running": 2, "queued": 3,
             "total": 6})
    printer({"kind": "degraded", "task": None, "stage": None,
             "done": 1, "failed": 1, "running": 0, "queued": 4,
             "total": 6})
    err = capsys.readouterr().err
    assert "1/6 done" in err
    assert "serially" in err
