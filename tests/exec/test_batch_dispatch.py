"""``--jobs threads:N``: batched native dispatch through the scheduler.

Thread mode keeps the whole DAG in-process (no persistent store, no
pickling) and runs each wave of ready timing nodes as one C call. The
contract is scheduling-level parity: a threaded run leaves exactly the
artifacts — bit for bit — that a serial run computes, falls back per
point (and per wave) whenever the kernel cannot help, and keeps the
serial path's failure semantics.
"""

import pytest

from repro.exec.grid import (baseline_point, dynamic_point, parse_jobs,
                             run_points, selector_point)
from repro.harness.runner import Runner
from repro.minigraph.selectors import SlackProfileSelector, StructAll
from repro.pipeline import ckern
from repro.pipeline.config import config_by_name

needs_kernel = pytest.mark.skipif(
    not ckern.available(),
    reason="compiled kernel unavailable (no C compiler or REPRO_PURE_PY)")


def test_parse_jobs():
    assert parse_jobs(4) == (4, 0)
    assert parse_jobs("4") == (4, 0)
    assert parse_jobs("1") == (1, 0)
    assert parse_jobs("threads:8") == (1, 8)
    assert parse_jobs(" threads:8 ") == (1, 8)
    jobs, threads = parse_jobs("threads")
    assert jobs == 1 and threads >= 1
    with pytest.raises(ValueError):
        parse_jobs("sixteen")


@pytest.mark.parametrize("bad", [
    "threads:0", "threads:-2", "threads:", "threads:eight",
    "threads:2.5", "0", "-1", "-3", "", "2.5", "jobs:4", 0, -4,
])
def test_parse_jobs_rejects_bad_values(bad):
    """Zero, negative, and malformed specs raise a clean one-liner."""
    with pytest.raises(ValueError) as excinfo:
        parse_jobs(bad)
    message = str(excinfo.value)
    assert "--jobs" in message
    assert "\n" not in message


def _points():
    points = []
    for bench in ("crc32", "adpcm"):
        for config in ("reduced", "full"):
            points.append(baseline_point(bench, config))
            points.append(selector_point(bench, {"kind": "struct-all"},
                                         config))
    points.append(selector_point("fft", SlackProfileSelector(), "reduced"))
    points.append(dynamic_point("crc32", "reduced"))
    return points


def _artifacts(runner):
    """Every timing artifact of :func:`_points`, via the runner memo."""
    out = {}
    for bench in ("crc32", "adpcm"):
        for name in ("reduced", "full"):
            config = config_by_name(name)
            stats = runner.baseline(bench, config)
            out[("baseline", bench, name)] = (stats.cycles, stats.ipc)
            run = runner.run_selector(bench, StructAll(), config)
            out[("struct-all", bench, name)] = \
                (run.stats.cycles, run.ipc, run.coverage)
    run = runner.run_selector("fft", SlackProfileSelector(),
                              config_by_name("reduced"))
    out[("slack-profile", "fft")] = (run.stats.cycles, run.ipc,
                                     run.coverage)
    dyn = runner.run_slack_dynamic("crc32", config_by_name("reduced"))
    out[("slack-dynamic", "crc32")] = (dyn.stats.cycles, dyn.ipc,
                                       dyn.coverage)
    return out


@needs_kernel
def test_threaded_run_points_bit_identical_to_serial():
    """threads:N prewarms the store with exactly the serial artifacts."""
    threaded = Runner()
    before = ckern.counters["batch_points"]
    report = run_points(threaded, _points(), jobs=1, threads=4)
    assert not report.failures
    assert ckern.counters["batch_points"] > before  # batches actually ran

    serial = Runner()
    serial_report = run_points(serial, _points(), jobs=1)
    assert not serial_report.failures
    assert _artifacts(threaded) == _artifacts(serial)
    # Both reports completed the same task set.
    assert set(report.results) == set(serial_report.results)
    assert report.results == serial_report.results


@needs_kernel
def test_threads_need_no_persistent_store():
    """Unlike --jobs N, thread mode runs against a memory-only store."""
    runner = Runner()
    assert not runner.store.persistent
    with pytest.raises(ValueError):
        run_points(runner, _points()[:2], jobs=2)
    report = run_points(runner, _points()[:2], jobs=1, threads=2)
    assert not report.failures


def test_threads_degrade_to_serial_without_kernel(monkeypatch):
    """REPRO_PURE_PY: every wave falls back to the per-point path."""
    monkeypatch.setenv("REPRO_PURE_PY", "1")
    runner = Runner()
    report = run_points(runner, _points()[:4], jobs=1, threads=4)
    assert not report.failures
    serial = Runner()
    run_points(serial, _points()[:4], jobs=1)
    config = config_by_name("reduced")
    assert runner.baseline("crc32", config).cycles == \
        serial.baseline("crc32", config).cycles


@needs_kernel
def test_threaded_summaries_match_task_shapes():
    """Batched summaries are indistinguishable from task returns."""
    runner = Runner()
    report = run_points(runner, _points(), jobs=1, threads=2)
    for tid, summary in report.results.items():
        stage = tid.split("/", 1)[0]
        if stage == "timing":
            assert set(summary) == {"ipc", "coverage"}
        elif stage == "baseline":
            assert set(summary) == {"ipc"}
        elif stage == "profile":
            assert set(summary) == {"entries"}
