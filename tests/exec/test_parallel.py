"""End-to-end engine tests: grid dedup, parallel determinism, cache reuse."""

import dataclasses

import pytest

from repro.exec.grid import (
    baseline_point, build_tasks, dynamic_point, run_points, selector_point,
)
from repro.exec.store import ArtifactStore
from repro.exec.tasks import selector_from_spec
from repro.harness.runner import Runner
from repro.minigraph.selectors import (
    SlackProfileSelector, StructAll, StructNone,
)
from repro.pipeline.config import full_config, reduced_config

BENCHES = ("crc32", "adpcm")


def _points():
    points = []
    for bench in BENCHES:
        points.append(baseline_point(bench, "full"))
        points.append(baseline_point(bench, "reduced"))
        points.append(selector_point(bench, StructAll(), "reduced"))
        points.append(selector_point(bench, SlackProfileSelector(),
                                     "reduced"))
        points.append(dynamic_point(bench, "reduced", mode="full",
                                    outlining_penalty=True))
    return points


def _collect(runner):
    """The per-benchmark result tuple the figures are built from."""
    out = {}
    for bench in BENCHES:
        out[bench] = (
            runner.baseline(bench, full_config()).ipc,
            runner.baseline(bench, reduced_config()).ipc,
            runner.run_selector(bench, StructAll(), reduced_config()).ipc,
            runner.run_selector(bench, SlackProfileSelector(),
                                reduced_config()).ipc,
            runner.run_slack_dynamic(bench, reduced_config()).ipc,
            runner.run_selector(bench, StructAll(),
                                reduced_config()).coverage,
        )
    return out


def test_grid_dedups_shared_upstream_nodes():
    runner = Runner()
    tasks = build_tasks(_points(), runner)
    by_stage = {}
    for task in tasks:
        by_stage.setdefault(task.stage, []).append(task.id)
    # One trace and one candidate enumeration per benchmark, shared by
    # every selector; one profile each (slack-profile's reduced trainer).
    assert len(by_stage["trace"]) == len(BENCHES)
    assert len(by_stage["candidates"]) == len(BENCHES)
    assert len(by_stage["profile"]) == len(BENCHES)
    # struct-all + slack-profile + slack-dynamic plans per benchmark.
    assert len(by_stage["plan"]) == 3 * len(BENCHES)
    assert len(set(task.id for task in tasks)) == len(tasks)


def test_parallel_and_serial_are_identical(tmp_path):
    serial = _collect(Runner())

    store = ArtifactStore(tmp_path / "cache")
    runner = Runner(store=store)
    report = run_points(runner, _points(), jobs=4)
    assert not report.failures
    # Replay through a fresh runner over the warmed store: everything is
    # a cache hit and the numbers match the serial in-process run.
    replay = Runner(store=ArtifactStore(tmp_path / "cache"))
    assert _collect(replay) == serial
    stats = replay.store.stats
    assert stats.misses == 0
    assert stats.hit_rate == 1.0


def test_jobs_one_scheduler_matches_direct_calls(tmp_path):
    store = ArtifactStore(tmp_path / "cache")
    runner = Runner(store=store)
    report = run_points(runner, _points(), jobs=1)
    assert not report.failures
    assert _collect(Runner(store=store)) == _collect(Runner())


def test_parallel_requires_persistent_store():
    with pytest.raises(ValueError, match="persistent"):
        run_points(Runner(), _points(), jobs=2)


def test_runner_key_includes_max_insts(tmp_path):
    """The seed's memo-key bug: traces keyed without max_insts aliased.

    Two runners with different instruction limits sharing one store must
    produce two distinct trace artifacts, not alias the first one.
    """
    store = ArtifactStore(tmp_path / "cache")
    first = Runner(max_insts=1_000_000, store=store)
    second = Runner(max_insts=2_000_000, store=store)
    first.trace("crc32")
    second.trace("crc32")
    assert store.stats.misses == 2  # no aliasing: both were computed
    assert store.disk_summary()["trace"]["count"] == 2


def test_runner_cross_process_cache_reuse(tmp_path):
    first = Runner(store=ArtifactStore(tmp_path / "cache"))
    trace = first.trace("crc32")
    second = Runner(store=ArtifactStore(tmp_path / "cache"))
    again = second.trace("crc32")
    assert again is not trace  # different store instance...
    assert len(again.records) == len(trace.records)  # ...same artifact
    assert second.store.stats.disk_hits == 1


def test_selector_run_is_frozen():
    runner = Runner()
    run = runner.run_selector("crc32", StructNone(), reduced_config())
    with pytest.raises(dataclasses.FrozenInstanceError):
        run.selector = "renamed"


def test_slack_dynamic_label_set_at_construction():
    runner = Runner()
    ideal = runner.run_slack_dynamic("crc32", reduced_config(), mode="sial",
                                     outlining_penalty=False)
    assert ideal.selector == "ideal-slack-dynamic-sial"


def test_selector_spec_roundtrip():
    for selector in (StructAll(), StructNone(),
                     SlackProfileSelector("delay", unprofiled_ok=False)):
        rebuilt = selector_from_spec(selector.spec())
        assert rebuilt.name == selector.name
        assert rebuilt.spec() == selector.spec()


def test_limit_study_parallel_matches_serial(tmp_path):
    from repro.analysis.limit_study import run_limit_study
    serial = run_limit_study(Runner(), subset_cap=16)
    parallel = run_limit_study(
        Runner(store=ArtifactStore(tmp_path / "cache"), jobs=3),
        subset_cap=16, jobs=3)
    assert [dataclasses.astuple(p) for p in parallel.points] == \
        [dataclasses.astuple(p) for p in serial.points]
    assert parallel.render() == serial.render()
