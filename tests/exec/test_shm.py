"""Shared-memory trace transport: round-trip fidelity, cleanup, fallback.

The parent publishes functional-trace columns into
``multiprocessing.shared_memory`` segments (:mod:`repro.exec.shm`);
workers attach them zero-copy instead of unpickling the disk artifact.
These tests pin the three contracts that make that safe: the rehydrated
trace is indistinguishable from the original (same records, same packed
columns, same timing results), segments never outlive the run — even
when a worker is killed mid-flight — and every failure path degrades
silently to the ordinary pickle-through-the-store transport.
"""

import os

import pytest

from repro.exec.dag import Scheduler, Task
from repro.exec.grid import (
    baseline_point, build_tasks, publish_point_traces, run_points,
    selector_point,
)
from repro.exec.shm import ShmRegistry, attach_trace
from repro.exec.store import ArtifactStore
from repro.harness.runner import Runner
from repro.minigraph.selectors import StructAll
from repro.minigraph.transform import fold_trace
from repro.pipeline.config import reduced_config
from repro.pipeline.core import OoOCore


def _segment_exists(name: str) -> bool:
    from multiprocessing import shared_memory
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    from repro.exec.shm import _untrack
    _untrack(segment)
    segment.close()
    return True


# -- task bodies (module-level: pickled into pool workers) --------------------

def t_attached_len(descriptor):
    """Attach the shared trace and report its length."""
    trace = attach_trace(descriptor)
    assert trace is not None
    return len(trace.records)


def t_kill_attached(descriptor, sentinel):
    """Attach the shared trace, then die hard on the first invocation."""
    trace = attach_trace(descriptor)
    assert trace is not None
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as handle:
            handle.write("seen")
        os._exit(17)  # mid-flight death: segment still attached
    return len(trace.records)


# -- round-trip fidelity ------------------------------------------------------

def test_publish_attach_roundtrip(runner):
    trace = runner.trace("crc32")
    registry = ShmRegistry()
    descriptor = registry.publish(trace, "crc32", "train", runner.max_insts)
    assert descriptor is not None
    try:
        rehydrated = attach_trace(descriptor)
        assert rehydrated is not None
        assert len(rehydrated.records) == len(trace.records)
        assert rehydrated.input_name == trace.input_name
        assert rehydrated.dynamic_count_of() == trace.dynamic_count_of()
        original, shared = trace.packed(), rehydrated.packed()
        for column in ("pc", "op", "opclass", "latency", "rd", "addr",
                       "next_pc", "srcs", "srcs_start", "kind", "taken"):
            assert list(getattr(shared, column)) == \
                list(getattr(original, column)), column
        for a, b in zip(trace.records, rehydrated.records):
            assert (a.pc, a.srcs, a.taken, a.next_pc) == \
                (b.pc, b.srcs, b.taken, b.next_pc)
        # Attach is memoized per process by segment name.
        assert attach_trace(descriptor) is rehydrated
    finally:
        registry.release_all()


def test_rehydrated_trace_times_identically(runner):
    """The timing core (compiled or Python) cannot tell the columns are
    memory-mapped: same stats, cycle for cycle."""
    trace = runner.trace("adpcm")
    registry = ShmRegistry()
    descriptor = registry.publish(trace, "adpcm", "train", runner.max_insts)
    assert descriptor is not None
    try:
        rehydrated = attach_trace(descriptor)
        original = OoOCore(reduced_config(), trace.packed(),
                           warm_caches=True).run()
        shared = OoOCore(reduced_config(), rehydrated.packed(),
                         warm_caches=True).run()
        assert (original.cycles, original.ipc, original.replays) == \
            (shared.cycles, shared.ipc, shared.replays)
    finally:
        registry.release_all()


def test_folded_traces_are_not_published(runner):
    """Handle records carry object state the column layout cannot ship."""
    plan = runner.plan("crc32", StructAll())
    trace = runner.trace("crc32")
    folded = fold_trace(trace, plan)
    from repro.isa.interp import Trace
    fake = Trace(trace.program, list(folded), input_name="train")
    registry = ShmRegistry()
    assert registry.publish(fake, "crc32", "train",
                            runner.max_insts) is None
    assert len(registry) == 0


# -- lifecycle ----------------------------------------------------------------

def test_refcounted_release(runner):
    trace = runner.trace("crc32")
    registry = ShmRegistry()
    first = registry.publish(trace, "crc32", "train", runner.max_insts)
    second = registry.publish(trace, "crc32", "train", runner.max_insts)
    assert first is second  # deduplicated
    assert len(registry) == 1
    registry.release(first)
    assert _segment_exists(first["segment"])  # one reference left
    registry.release(first)
    assert len(registry) == 0
    assert not _segment_exists(first["segment"])


def test_attach_after_release_falls_back(runner):
    trace = runner.trace("adpcm")
    registry = ShmRegistry()
    descriptor = registry.publish(trace, "adpcm", "train", runner.max_insts)
    registry.release_all()
    # Fresh name so the per-process attach memo cannot mask the miss.
    stale = dict(descriptor, segment=descriptor["segment"] + "x")
    assert attach_trace(stale) is None


def test_worker_death_leaves_no_segments(tmp_path, runner):
    """A worker killed mid-flight must not leak the segment: the parent
    owns unlink, the run degrades to serial, and the survivor retry
    (attaching in-process) still completes."""
    trace = runner.trace("crc32")
    registry = ShmRegistry()
    descriptor = registry.publish(trace, "crc32", "train", runner.max_insts)
    assert descriptor is not None
    sentinel = str(tmp_path / "seen")
    tasks = [Task(id="killer", fn=t_kill_attached,
                  args=(descriptor, sentinel)),
             Task(id="steady", fn=t_attached_len, args=(descriptor,)),
             Task(id="child", fn=t_attached_len, args=(descriptor,),
                  deps=("killer",))]
    try:
        report = Scheduler(jobs=2).run(tasks)
    finally:
        registry.release_all()
    assert report.degraded  # the pool died; the rest ran serially
    assert report.results["killer"] == len(trace.records)
    assert report.results["steady"] == len(trace.records)
    assert report.results["child"] == len(trace.records)
    assert not _segment_exists(descriptor["segment"])


# -- scheduler integration ----------------------------------------------------

def _shm_points():
    points = []
    for bench in ("crc32", "adpcm"):
        points.append(baseline_point(bench, "reduced"))
        points.append(selector_point(bench, StructAll(), "reduced"))
    return points


def test_build_tasks_threads_descriptors_into_specs(tmp_path):
    runner = Runner(store=ArtifactStore(tmp_path / "cache"))
    for bench in ("crc32", "adpcm"):
        runner.trace(bench)
    registry = ShmRegistry()
    try:
        table = publish_point_traces(runner, _shm_points(), registry)
        assert set(table) == {("crc32", "train"), ("adpcm", "train")}
        tasks = build_tasks(_shm_points(), runner, shm_traces=table)
        specs = [task.args[0] for task in tasks]
        assert all(spec.get("shm_traces") for spec in specs)
        for spec in specs:
            for desc in spec["shm_traces"]:
                assert desc["bench"] == spec["bench"]
    finally:
        registry.release_all()


def test_parallel_run_over_shm_matches_serial(tmp_path):
    """run_points with prewarmed (published) traces must produce the
    same artifacts as a fresh serial runner, and unlink every segment."""
    published = {}
    original_publish = ShmRegistry.publish

    def spying_publish(self, trace, bench, input_name, max_insts):
        descriptor = original_publish(self, trace, bench, input_name,
                                      max_insts)
        if descriptor is not None:
            published[descriptor["segment"]] = descriptor
        return descriptor

    ShmRegistry.publish = spying_publish
    try:
        parallel = Runner(store=ArtifactStore(tmp_path / "par"))
        for bench in ("crc32", "adpcm"):
            parallel.trace(bench)  # prewarm: makes the traces publishable
        report = run_points(parallel, _shm_points(), jobs=2,
                            raise_on_failure=True)
    finally:
        ShmRegistry.publish = original_publish
    assert not report.failures
    assert published, "no segments were published for a warmed store"
    for name in published:
        assert not _segment_exists(name), f"leaked segment {name}"

    serial = Runner(store=ArtifactStore(tmp_path / "ser"))
    for bench in ("crc32", "adpcm"):
        assert parallel.baseline(bench, reduced_config()).ipc == \
            serial.baseline(bench, reduced_config()).ipc
        assert parallel.run_selector(bench, StructAll(),
                                     reduced_config()).ipc == \
            serial.run_selector(bench, StructAll(), reduced_config()).ipc
