"""Artifact store: addressing, hit/miss accounting, corruption recovery."""

import pickle

import pytest

from repro.exec.store import MISS, ArtifactStore, code_version


def test_key_is_deterministic_and_order_insensitive(tmp_path):
    store = ArtifactStore(tmp_path)
    a = store.key("trace", {"bench": "crc32", "max_insts": 100})
    b = store.key("trace", {"max_insts": 100, "bench": "crc32"})
    assert a == b
    assert len(a) == 64


def test_key_sensitive_to_every_parameter(tmp_path):
    store = ArtifactStore(tmp_path)
    base = {"bench": "crc32", "input": "train", "max_insts": 100}
    key = store.key("trace", base)
    assert store.key("trace", dict(base, max_insts=200)) != key
    assert store.key("trace", dict(base, input="ref")) != key
    assert store.key("baseline", base) != key


def test_key_sensitive_to_salt(tmp_path):
    base = {"bench": "crc32"}
    a = ArtifactStore(tmp_path, salt="v1").key("trace", base)
    b = ArtifactStore(tmp_path, salt="v2").key("trace", base)
    assert a != b


def test_default_salt_is_code_version(tmp_path):
    assert ArtifactStore(tmp_path).salt == code_version()


def test_memory_only_roundtrip():
    store = ArtifactStore()
    assert not store.persistent
    key = store.key("x", {"p": 1})
    assert store.get(key) is MISS
    value = {"payload": [1, 2, 3]}
    store.put(key, value)
    assert store.get(key) is value  # identity, not equality
    assert store.stats.misses == 1
    assert store.stats.memory_hits == 1


def test_disk_roundtrip_across_instances(tmp_path):
    first = ArtifactStore(tmp_path)
    key = first.key("x", {"p": 1})
    first.put(key, {"payload": 42}, kind="x", params={"p": 1})
    second = ArtifactStore(tmp_path)
    assert second.get(key, "x") == {"payload": 42}
    assert second.stats.disk_hits == 1
    # Once read from disk, the memory layer serves identity.
    assert second.get(key) is second.get(key)


def test_get_or_compute_memoizes(tmp_path):
    store = ArtifactStore(tmp_path)
    calls = []

    def compute():
        calls.append(1)
        return "value"

    assert store.get_or_compute("k", {"a": 1}, compute) == "value"
    assert store.get_or_compute("k", {"a": 1}, compute) == "value"
    assert len(calls) == 1
    # A changed parameter is a different artifact.
    assert store.get_or_compute("k", {"a": 2}, compute) == "value"
    assert len(calls) == 2


def test_corrupted_payload_recovers_as_miss(tmp_path):
    store = ArtifactStore(tmp_path)
    key = store.key("x", {"p": 1})
    store.put(key, [1, 2, 3], kind="x")
    payload = store._payload_path(key)
    payload.write_bytes(b"not a pickle at all")

    fresh = ArtifactStore(tmp_path)
    assert fresh.get(key, "x") is MISS
    assert fresh.stats.corrupt_dropped == 1
    assert not payload.exists()  # dropped, not left to fail again
    # Recomputation repopulates the slot.
    assert fresh.get_or_compute("x", {"p": 1}, lambda: [1, 2, 3]) == [1, 2, 3]
    assert ArtifactStore(tmp_path).get(key) == [1, 2, 3]


def test_truncated_payload_recovers_as_miss(tmp_path):
    store = ArtifactStore(tmp_path)
    key = store.key("x", {"p": 1})
    store.put(key, list(range(1000)), kind="x")
    payload = store._payload_path(key)
    payload.write_bytes(payload.read_bytes()[:10])  # torn write
    fresh = ArtifactStore(tmp_path)
    assert fresh.get(key) is MISS
    assert fresh.stats.corrupt_dropped == 1


def test_disk_summary_clear_and_prune(tmp_path):
    store = ArtifactStore(tmp_path)
    for i in range(3):
        store.put(store.key("trace", {"i": i}), i, kind="trace",
                  params={"i": i})
    store.put(store.key("plan", {"i": 0}), "p", kind="plan")
    summary = store.disk_summary()
    assert summary["trace"]["count"] == 3
    assert summary["plan"]["count"] == 1
    assert summary["trace"]["bytes"] > 0

    assert store.prune(kinds=["plan"]) == 1
    assert "plan" not in store.disk_summary()
    # Recent artifacts survive an age-based prune.
    assert store.prune(max_age=3600.0) == 0
    assert store.clear() == 3
    assert store.disk_summary() == {}
    assert store.get(store.key("trace", {"i": 0})) is MISS


def test_put_leaves_no_partial_files(tmp_path):
    store = ArtifactStore(tmp_path)
    for i in range(5):
        store.put(store.key("x", {"i": i}), list(range(100)), kind="x")
    assert list(tmp_path.glob("**/.tmp-*")) == []
    assert list(tmp_path.glob("**/*.part")) == []


def test_stats_render_mentions_rate(tmp_path):
    store = ArtifactStore(tmp_path)
    key = store.key("x", {"p": 1})
    store.get(key, "x")
    store.put(key, 1, "x")
    store.get(key, "x")
    text = store.stats.render()
    assert "1 hits / 2 lookups" in text
    assert "x 1/2" in text


def test_layout_version_3_invalidates_version_2_artifacts(tmp_path,
                                                          monkeypatch):
    """Version 3 (observed runs execute on the compiled kernel's event
    tap) must never serve artifacts recorded under version 2's
    Python-observer engine."""
    from repro.exec import store as store_mod

    assert store_mod.LAYOUT_VERSION == 3
    monkeypatch.setattr(store_mod, "_code_version", None)
    monkeypatch.setattr(store_mod, "LAYOUT_VERSION", 2)
    v2_salt = code_version()
    v2_store = ArtifactStore(tmp_path, salt=v2_salt)
    key = v2_store.key("profile", {"bench": "crc32", "config": "reduced"})
    v2_store.put(key, {"entries": 16}, kind="profile")

    monkeypatch.setattr(store_mod, "_code_version", None)
    monkeypatch.setattr(store_mod, "LAYOUT_VERSION", 3)
    v3_salt = code_version()
    assert v3_salt != v2_salt
    v3_store = ArtifactStore(tmp_path, salt=v3_salt)
    v3_key = v3_store.key("profile", {"bench": "crc32", "config": "reduced"})
    assert v3_key != key
    assert v3_store.get(v3_key) is MISS


def test_seed_is_memory_only(tmp_path):
    """Seeded values hit lookups but never land on disk (they may wrap
    process-local resources like shared-memory views)."""
    store = ArtifactStore(tmp_path)
    key = store.key("trace", {"bench": "crc32"})
    sentinel = object()
    store.seed(key, sentinel)
    assert store.get(key, "trace") is sentinel
    # A second store over the same directory sees nothing: no disk write.
    other = ArtifactStore(tmp_path, salt=store.salt)
    assert other.get(key, "trace") is MISS
    # Seeding never clobbers an existing value.
    store.seed(key, object())
    assert store.get(key, "trace") is sentinel


def test_layout_version_invalidates_cached_artifacts(tmp_path, monkeypatch):
    """Bumping LAYOUT_VERSION changes the code salt, so artifacts cached
    under the old trace/record layout can never be served again."""
    from repro.exec import store as store_mod

    monkeypatch.setattr(store_mod, "_code_version", None)
    old_salt = code_version()
    store = ArtifactStore(tmp_path, salt=old_salt)
    key = store.key("baseline", {"bench": "crc32"})
    store.put(key, {"cycles": 123}, kind="baseline")
    assert store.get(key) == {"cycles": 123}

    monkeypatch.setattr(store_mod, "_code_version", None)
    monkeypatch.setattr(store_mod, "LAYOUT_VERSION",
                        store_mod.LAYOUT_VERSION + 1)
    new_salt = code_version()
    assert new_salt != old_salt
    fresh = ArtifactStore(tmp_path, salt=new_salt)
    assert fresh.get(fresh.key("baseline", {"bench": "crc32"})) is MISS
    # Same parameters, same kind — only the layout version differs.
    assert fresh.key("baseline", {"bench": "crc32"}) != key


def test_source_digest_covers_native_kernel_sources(tmp_path):
    """Editing a ``.c`` source changes the salt like a ``.py`` edit does.

    The plan kernels live in ``pipeline/_ckern.c``; the code-version
    salt globs ``*.c`` next to the Python sources, so shipping new C
    code invalidates every cached artifact automatically.
    """
    from repro.exec.store import source_digest

    root = tmp_path / "repro"
    pkg = root / "pipeline"
    pkg.mkdir(parents=True)
    (pkg / "core.py").write_text("python = 1\n")
    (pkg / "_ckern.c").write_text("int kernel(void) { return 1; }\n")
    baseline = source_digest(root, packages=("pipeline",))
    assert baseline == source_digest(root, packages=("pipeline",))

    (pkg / "_ckern.c").write_text("int kernel(void) { return 2; }\n")
    assert source_digest(root, packages=("pipeline",)) != baseline

    # A .py edit moves it too (sanity: the digest is not .c-only).
    (pkg / "core.py").write_text("python = 2\n")
    moved = source_digest(root, packages=("pipeline",))
    assert moved != baseline


def test_code_version_matches_source_digest_of_tree():
    """code_version() is exactly the digest of the shipped tree."""
    from pathlib import Path

    import repro
    from repro.exec.store import source_digest

    root = Path(repro.__file__).resolve().parent
    assert code_version() == source_digest(root)
