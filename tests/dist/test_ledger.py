"""Run-ledger format tests: replay, torn tails, and the durability lint."""

import json

import pytest

from repro.dist.ledger import LedgerError, RunLedger, assert_skippable


def _create(path, workload=None):
    return RunLedger.create(
        path, workload=workload or {"kind": "experiments", "points": []},
        runner_params={"max_insts": 1}, salt="s" * 16,
        cache_dir="/tmp/cache", store_backend="dir")


class TestRoundTrip:
    def test_header_nodes_complete(self, tmp_path):
        path = tmp_path / "run.jsonl"
        ledger = _create(path)
        ledger.record("trace/crc32", "trace", "done")
        ledger.record("baseline/crc32", "baseline", "failed")
        ledger.complete(1, 1)
        ledger.close()
        header, status, completed = RunLedger.load(path)
        assert header["salt"] == "s" * 16
        assert header["store_backend"] == "dir"
        assert status == {"trace/crc32": "done",
                          "baseline/crc32": "failed"}
        assert completed is True

    def test_repeated_records_last_status_wins(self, tmp_path):
        path = tmp_path / "run.jsonl"
        ledger = _create(path)
        ledger.record("t1", "trace", "failed")
        ledger.record("t1", "trace", "done")
        ledger.close()
        _, status, completed = RunLedger.load(path)
        assert status == {"t1": "done"}
        assert completed is False

    def test_skipped_durable_records_are_done(self, tmp_path):
        path = tmp_path / "run.jsonl"
        ledger = _create(path)
        ledger.record_skipped_durable(["t1", "t2"])
        ledger.close()
        _, status, _ = RunLedger.load(path)
        assert status == {"t1": "done", "t2": "done"}
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert all(r.get("resumed") for r in lines if r["type"] == "node")

    def test_append_to_extends_without_truncating(self, tmp_path):
        path = tmp_path / "run.jsonl"
        first = _create(path)
        first.record("t1", "trace", "done")
        first.close()
        header, _, _ = RunLedger.load(path)
        second = RunLedger.append_to(path, header)
        second.record("t2", "baseline", "done")
        second.close()
        _, status, _ = RunLedger.load(path)
        assert status == {"t1": "done", "t2": "done"}


class TestReplayTolerance:
    def test_torn_tail_is_ignored(self, tmp_path):
        """The half-written line a SIGKILL leaves behind must not poison
        replay — everything before it still counts."""
        path = tmp_path / "run.jsonl"
        ledger = _create(path)
        ledger.record("t1", "trace", "done")
        ledger.close()
        with open(path, "a") as handle:
            handle.write('{"type": "node", "task": "t2", "sta')
        _, status, completed = RunLedger.load(path)
        assert status == {"t1": "done"}
        assert completed is False

    def test_missing_header_refused(self, tmp_path):
        path = tmp_path / "notaledger.jsonl"
        path.write_text('{"type": "node", "task": "t1", "status": "done"}\n')
        with pytest.raises(LedgerError, match="no run header"):
            RunLedger.load(path)

    def test_version_skew_refused(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps({"type": "run", "version": 99}) + "\n")
        with pytest.raises(LedgerError, match="version"):
            RunLedger.load(path)

    def test_missing_file_refused(self, tmp_path):
        with pytest.raises(LedgerError, match="cannot read"):
            RunLedger.load(tmp_path / "absent.jsonl")


class _Task:
    def __init__(self, task_id, stage):
        self.id = task_id
        self.stage = stage


class TestDurabilityLint:
    def test_skipping_durable_nodes_passes(self):
        tasks = [_Task("t1", "trace"), _Task("c1", "check")]
        assert_skippable(tasks, durable_ids=["t1"], skip_ids=["t1"])

    def test_skipping_non_durable_node_refused(self):
        """The invariant: a step skippable on resume must have durable
        outputs. Check nodes have none, so a journal claiming one is
        done must not make resume skip it."""
        tasks = [_Task("t1", "trace"), _Task("c1", "check")]
        with pytest.raises(LedgerError, match="durable outputs"):
            assert_skippable(tasks, durable_ids=["t1"],
                             skip_ids=["t1", "c1"])


class TestSink:
    def test_sink_journals_terminal_events_and_forwards(self, tmp_path):
        path = tmp_path / "run.jsonl"
        ledger = _create(path)
        seen = []
        on_event = ledger.sink(seen.append)
        on_event({"kind": "submit", "task": "t1", "stage": "trace"})
        on_event({"kind": "done", "task": "t1", "stage": "trace"})
        on_event({"kind": "progress"})   # no task id: forwarded, not journaled
        ledger.close()
        assert [e["kind"] for e in seen] == ["submit", "done", "progress"]
        _, status, _ = RunLedger.load(path)
        assert status == {"t1": "done"}
