"""Checkpoint/resume end to end: a resume schedules exactly the nodes
whose durable outputs are missing — no more (wasted recompute) and no
less (silent gaps).

The SIGKILL test runs the grid in a subprocess and kills it with signal
9 mid-run (a real torn process: open ledger handle, half-written store),
then resumes in this process and asserts zero re-execution of artifacts
that survived — the PR's acceptance criterion.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.dist.ledger import LedgerError, RunLedger
from repro.dist.resume import (
    open_ledger, resume_run, workload_for_limit_study, workload_for_points,
)
from repro.exec import tasks as task_fns
from repro.exec.grid import baseline_point, run_points, selector_point
from repro.exec.store import ArtifactStore, iter_sidecars
from repro.harness.runner import Runner
from repro.minigraph.selectors import StructAll

BENCHES = ("crc32", "adpcm", "sha")


def _points():
    points = [baseline_point(bench, "reduced") for bench in BENCHES]
    points.append(selector_point("crc32", StructAll(), "reduced"))
    return points


def _run_with_ledger(tmp_path):
    runner = Runner(store=ArtifactStore(tmp_path / "cache"))
    points = _points()
    ledger_path = tmp_path / "run.jsonl"
    ledger = open_ledger(ledger_path, runner,
                         workload_for_points(points), extra={"jobs": 1})
    try:
        report = run_points(runner, points, jobs=1, ledger=ledger)
    finally:
        ledger.close()
    assert not report.failures
    # Resume re-probes through a fresh Runner; drop this process's task
    # runner cache so deleted disk artifacts cannot be resurrected from
    # a stale memory layer.
    task_fns._RUNNERS.clear()
    return ledger_path


class TestResume:
    def test_complete_run_resumes_to_zero_work(self, tmp_path):
        ledger_path = _run_with_ledger(tmp_path)
        summary = resume_run(ledger_path)
        assert summary["kind"] == "experiments"
        assert summary["scheduled"] == 0
        assert summary["skipped"] == summary["total"]
        assert summary["failed"] == 0

    def test_resume_schedules_exactly_the_missing_nodes(self, tmp_path):
        ledger_path = _run_with_ledger(tmp_path)
        cache = tmp_path / "cache"
        # Destroy exactly one durable output (a baseline timing run).
        victims = [key for key, meta in iter_sidecars(cache)
                   if meta.get("kind") == "baseline"]
        store = ArtifactStore(cache)
        store.backend.delete(victims[0])
        task_fns._RUNNERS.clear()

        before = {path: path.stat().st_mtime_ns
                  for path in cache.glob("??/*.pkl")}
        summary = resume_run(ledger_path)
        assert summary["scheduled"] == 1
        assert summary["completed"] == 1
        assert summary["skipped"] == summary["total"] - 1
        assert summary["failed"] == 0
        # The deleted artifact is durable again...
        assert any(meta.get("kind") == "baseline" and key == victims[0]
                   for key, meta in iter_sidecars(cache))
        # ...and nothing that already existed was rewritten.
        for path, mtime in before.items():
            assert path.stat().st_mtime_ns == mtime, path
        # A second resume finds everything durable.
        task_fns._RUNNERS.clear()
        again = resume_run(ledger_path)
        assert again["scheduled"] == 0

    def test_salt_mismatch_refused_without_force(self, tmp_path):
        ledger_path = _run_with_ledger(tmp_path)
        header, _, _ = RunLedger.load(ledger_path)
        lines = ledger_path.read_text().splitlines()
        header["salt"] = "stale" * 3
        lines[0] = json.dumps(header, sort_keys=True)
        ledger_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(LedgerError, match="salt changed"):
            resume_run(ledger_path)
        # allow_stale proceeds (and, same code, same store: all durable).
        summary = resume_run(ledger_path, allow_stale=True)
        assert summary["failed"] == 0

    def test_unknown_workload_kind_refused(self, tmp_path):
        runner = Runner(store=ArtifactStore(tmp_path / "cache"))
        ledger = open_ledger(tmp_path / "run.jsonl", runner,
                             {"kind": "mystery"})
        ledger.close()
        with pytest.raises(LedgerError, match="not resumable"):
            resume_run(tmp_path / "run.jsonl")


class TestLimitStudyResume:
    def test_resume_reuses_durable_subset_masks(self, tmp_path):
        from repro.analysis.limit_study import run_limit_study
        from repro.pipeline.config import reduced_config

        runner = Runner(store=ArtifactStore(tmp_path / "cache"))
        ledger_path = tmp_path / "study.jsonl"
        ledger = open_ledger(
            ledger_path, runner,
            workload_for_limit_study("adpcm", "tiny", "reduced", 10, 8))
        try:
            result = run_limit_study(runner, bench="adpcm",
                                     input_name="tiny",
                                     config=reduced_config(),
                                     subset_cap=8,
                                     progress=ledger.sink(None))
            ledger.complete(len(result.points), 0)
        finally:
            ledger.close()
        task_fns._RUNNERS.clear()
        summary = resume_run(ledger_path)
        assert summary["kind"] == "limit-study"
        assert summary["scheduled"] == 0      # every mask was a store hit
        assert summary["skipped"] > 0
        assert summary["completed"] == summary["total"]


_CHILD = """
import os, signal, sys
sys.path.insert(0, {src!r})
from repro.dist.resume import open_ledger, workload_for_points
from repro.exec.grid import baseline_point, run_points
from repro.exec.store import ArtifactStore
from repro.harness.runner import Runner

benches = {benches!r}
points = [baseline_point(bench, "reduced") for bench in benches]
runner = Runner(store=ArtifactStore({cache!r}))
ledger = open_ledger({ledger!r}, runner, workload_for_points(points),
                     extra={{"jobs": 1}})

done = 0
def on_event(event):
    global done
    if event.get("kind") == "done":
        done += 1
        if done == {kill_after}:
            os.kill(os.getpid(), signal.SIGKILL)   # no cleanup, no flush

run_points(runner, points, jobs=1, ledger=ledger, on_event=on_event)
"""


class TestKillResume:
    def test_sigkill_mid_run_then_resume_recomputes_nothing_durable(
            self, tmp_path):
        src = str(Path(__file__).resolve().parents[2] / "src")
        cache = tmp_path / "cache"
        ledger_path = tmp_path / "run.jsonl"
        benches = ("crc32", "adpcm", "sha", "bitcount", "qsort",
                   "stringsearch")
        script = _CHILD.format(src=src, benches=benches,
                               cache=str(cache), ledger=str(ledger_path),
                               kill_after=4)
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, timeout=300)
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()

        header, journaled, completed = RunLedger.load(ledger_path)
        assert completed is False
        done = [t for t, s in journaled.items() if s == "done"]
        assert len(done) >= 4                  # it really died mid-run

        survivors = {path: path.stat().st_mtime_ns
                     for path in cache.glob("??/*.pkl")}
        assert survivors                        # partial store exists
        time.sleep(0.01)                        # mtime granularity guard

        summary = resume_run(ledger_path)
        assert summary["failed"] == 0
        assert summary["skipped"] == len(survivors)
        assert summary["scheduled"] == summary["total"] - len(survivors)
        assert summary["completed"] == summary["scheduled"]
        # Zero re-executed nodes whose artifacts already existed: every
        # surviving payload is byte-for-byte untouched.
        for path, mtime in survivors.items():
            assert path.stat().st_mtime_ns == mtime, path
        # The resumed run is now complete end to end.
        _, _, finished = RunLedger.load(ledger_path)
        assert finished is True
