"""Backend parity: the dir walk and the SQLite manifest must be two
indexes over one store, never two stores.

Every test writes through :class:`ArtifactStore` so keys, pickling, and
sidecar content go through the production path, then checks that both
backends answer maintenance queries identically and that the blob
layout stays byte-identical (a store directory must remain readable by
either backend and by older checkouts).
"""

import json

import pytest

from repro.dist.sqlite_store import (
    MANIFEST_NAME, SqliteManifestBackend, compare_backends,
)
from repro.exec.store import (
    ArtifactStore, DirBackend, iter_sidecars, make_backend,
)

SALT = "t" * 16


def _fill(store, n=6):
    for i in range(n):
        kind = "trace" if i % 2 else "plan"
        store.put(store.key(kind, {"i": i}), {"value": i}, kind, {"i": i})


class TestParity:
    def test_same_artifacts_through_both_backends(self, tmp_path):
        dir_store = ArtifactStore(tmp_path / "a", salt=SALT, backend="dir")
        sql_store = ArtifactStore(tmp_path / "b", salt=SALT,
                                  backend="sqlite")
        _fill(dir_store)
        _fill(sql_store)
        # Identical keys (content addressing is backend-independent)...
        dir_keys = sorted(k for k, _ in dir_store.backend.entries())
        sql_keys = sorted(k for k, _ in sql_store.backend.entries())
        assert dir_keys == sql_keys
        # ...identical payload bytes and sidecar JSON (modulo `created`).
        for key in dir_keys:
            assert dir_store.backend.read(key) == sql_store.backend.read(key)
            a = json.loads(dir_store.backend.sidecar_path(key).read_text())
            b = json.loads(sql_store.backend.sidecar_path(key).read_text())
            a.pop("created"), b.pop("created")
            assert a == b

    def test_summary_and_stats_agree(self, tmp_path):
        store = ArtifactStore(tmp_path, salt=SALT, backend="sqlite")
        _fill(store)
        dir_view = DirBackend(tmp_path)
        assert dir_view.summary() == store.backend.summary()

    def test_prune_decisions_agree(self, tmp_path):
        store = ArtifactStore(tmp_path, salt=SALT, backend="sqlite")
        _fill(store)
        # Kind-filtered prune through the manifest: the dir view of the
        # same directory must see exactly the same survivors.
        removed = store.prune(kinds=["trace"])
        assert removed == 3
        dir_view = DirBackend(tmp_path)
        assert sorted(k for k, _ in dir_view.entries()) == \
            sorted(k for k, _ in store.backend.entries())
        assert set(dir_view.summary()) == {"plan"}

    def test_cross_backend_read(self, tmp_path):
        """A store written by one backend is fully readable by the other."""
        writer = ArtifactStore(tmp_path, salt=SALT, backend="dir")
        _fill(writer)
        reader = ArtifactStore(tmp_path, salt=SALT, backend="sqlite")
        for i in range(6):
            kind = "trace" if i % 2 else "plan"
            assert reader.get(reader.key(kind, {"i": i}), kind) == \
                {"value": i}
        assert reader.stats.misses == 0


class TestMigration:
    def test_lazy_reindex_on_open(self, tmp_path):
        """Opening a dir-backend store with sqlite migrates automatically."""
        writer = ArtifactStore(tmp_path, salt=SALT, backend="dir")
        _fill(writer)
        backend = SqliteManifestBackend(tmp_path)
        assert (tmp_path / MANIFEST_NAME).exists()
        assert sorted(k for k, _ in backend.entries()) == \
            sorted(k for k, _ in iter_sidecars(tmp_path))
        backend.close()

    def test_forced_reindex_repairs_out_of_band_deletes(self, tmp_path):
        store = ArtifactStore(tmp_path, salt=SALT, backend="sqlite")
        _fill(store)
        victim = next(iter(sorted(k for k, _ in store.backend.entries())))
        # Delete behind the manifest's back, then rebuild.
        store.backend.payload_path(victim).unlink()
        store.backend.sidecar_path(victim).unlink()
        rows = store.backend.reindex(force=True)
        assert rows == 5
        assert victim not in {k for k, _ in store.backend.entries()}

    def test_manifest_is_derived_state(self, tmp_path):
        store = ArtifactStore(tmp_path, salt=SALT, backend="sqlite")
        _fill(store)
        store.backend.close()
        (tmp_path / MANIFEST_NAME).unlink()
        reopened = ArtifactStore(tmp_path, salt=SALT, backend="sqlite")
        assert reopened.backend.summary() == DirBackend(tmp_path).summary()


class TestResolution:
    def test_make_backend_names(self, tmp_path):
        assert make_backend("dir", tmp_path).name == "dir"
        sql = make_backend("sqlite", tmp_path)
        assert sql.name == "sqlite"
        sql.close()
        with pytest.raises(ValueError, match="unknown store backend"):
            make_backend("redis", tmp_path)

    def test_store_backend_name_property(self, tmp_path):
        assert ArtifactStore().backend_name == "memory"
        assert ArtifactStore(tmp_path, backend="dir").backend_name == "dir"


class TestCompare:
    def test_compare_backends_agree_and_time(self, tmp_path):
        store = ArtifactStore(tmp_path, salt=SALT, backend="dir")
        _fill(store, n=10)
        doc = compare_backends(tmp_path)
        assert doc["artifacts"] == 10
        assert doc["dir_stats_s"] > 0
        assert doc["sqlite_stats_s"] > 0
        assert set(doc["summary"]) == {"trace", "plan"}

    def test_compare_backends_refuses_disagreement(self, tmp_path):
        store = ArtifactStore(tmp_path, salt=SALT, backend="sqlite")
        _fill(store)
        store.backend.close()
        # New sidecar the manifest has never seen, and no lazy reindex
        # (the manifest is non-empty): the backends now disagree.
        extra = ArtifactStore(tmp_path, salt="u" * 16, backend="dir")
        extra.put(extra.key("plan", {"x": 1}), {"v": 1}, "plan", {"x": 1})
        with pytest.raises(RuntimeError, match="disagreement"):
            compare_backends(tmp_path)
