"""Socket dispatch end to end: a 2-worker fleet over a unix socket must
produce a store byte-for-byte equivalent to the serial run.

Workers are real ``repro worker`` subprocesses (own interpreters, own
store connections) — the same topology as multi-host dispatch, minus
the network. Exact per-worker task counts are never asserted (leasing
and stealing are timing-dependent); only totals and results are.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.dist.dispatch import (
    DispatchStats, LocalPoolBackend, make_dispatch,
)
from repro.exec.grid import baseline_point, run_points, selector_point
from repro.exec.store import ArtifactStore, iter_sidecars
from repro.harness.runner import Runner
from repro.minigraph.selectors import StructAll

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _points():
    return [baseline_point("crc32", "reduced"),
            baseline_point("adpcm", "reduced"),
            selector_point("crc32", StructAll(), "reduced")]


def _spawn_workers(address, cache, count=2):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return [subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--connect", str(address), "--store", str(cache),
         "--name", f"w{i}", "--once", "--dial-timeout", "30", "--quiet"],
        env=env) for i in range(count)]


def _ipc_by_artifact(cache):
    """Content-addressed view of a store's timing results."""
    out = {}
    for key, meta in iter_sidecars(cache):
        if meta.get("kind") in ("baseline", "run"):
            out[key] = meta.get("kind")
    return out


class TestMakeDispatch:
    def test_local_specs_resolve_to_default_pool(self):
        assert make_dispatch(None, jobs=2) is None
        assert make_dispatch("local", jobs=2) is None

    def test_workers_spec_resolves_to_socket_backend(self, tmp_path):
        backend = make_dispatch(f"workers:{tmp_path}/coord.sock", jobs=2)
        assert backend.name == "workers"
        assert isinstance(backend.stats, DispatchStats)
        backend.close([])

    def test_unknown_spec_refused(self):
        with pytest.raises(ValueError, match="unknown dispatch"):
            make_dispatch("carrier-pigeon", jobs=2)


class TestLocalPoolBackend:
    def test_local_backend_matches_default_path(self, tmp_path):
        """run_points with an explicit LocalPoolBackend is the same run
        as the historical jobs>1 path."""
        store = ArtifactStore(tmp_path / "cache")
        report = run_points(Runner(store=store), _points(), jobs=2,
                            dispatch=LocalPoolBackend(jobs=2))
        assert not report.failures
        serial = ArtifactStore(tmp_path / "serial")
        run_points(Runner(store=serial), _points(), jobs=1)
        assert _ipc_by_artifact(tmp_path / "cache") == \
            _ipc_by_artifact(tmp_path / "serial")


class TestSocketDispatch:
    def test_two_worker_fleet_matches_serial_bit_for_bit(self, tmp_path):
        serial_cache = tmp_path / "serial"
        report = run_points(Runner(store=ArtifactStore(serial_cache)),
                            _points(), jobs=1)
        assert not report.failures

        dist_cache = tmp_path / "dist"
        address = tmp_path / "coord.sock"
        backend = make_dispatch(f"workers:{address}", jobs=2)
        workers = _spawn_workers(address, dist_cache)
        try:
            report = run_points(Runner(store=ArtifactStore(dist_cache)),
                                _points(), jobs=2, dispatch=backend)
        finally:
            for proc in workers:
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()
        assert not report.failures
        assert not report.degraded
        assert backend.stats.completed == backend.stats.submitted
        assert backend.stats.workers_joined >= 1

        # Identical artifact sets under identical content addresses —
        # the keys cover every parameter, so key equality IS result
        # equality; payload bytes are checked on top.
        serial_keys = dict(iter_sidecars(serial_cache))
        dist_keys = dict(iter_sidecars(dist_cache))
        assert sorted(serial_keys) == sorted(dist_keys)
        serial_store = ArtifactStore(serial_cache)
        dist_store = ArtifactStore(dist_cache)
        for key, meta in serial_keys.items():
            assert serial_store.get(key, meta.get("kind", "?")) is not None
            assert serial_store.backend.read(key) == \
                dist_store.backend.read(key), key

    def test_workerless_fleet_degrades_to_serial(self, tmp_path):
        """No workers ever join: the grace expiry surfaces WorkerLost
        and the scheduler finishes the graph in-process."""
        from repro.dist.remote import SocketDispatchBackend
        backend = SocketDispatchBackend(
            str(tmp_path / "empty.sock"), jobs=2, grace=0.5)
        store = ArtifactStore(tmp_path / "cache")
        report = run_points(Runner(store=store),
                            [baseline_point("crc32", "reduced")],
                            jobs=2, dispatch=backend)
        assert not report.failures
        assert report.degraded
        assert store.disk_summary().get("baseline", {}).get("count") == 1
