"""Opcode metadata invariants."""

from repro.isa import opcodes as oc


def test_opcode_table_is_dense():
    assert len(oc.OP_INFO) == oc.N_OPCODES
    for code, info in enumerate(oc.OP_INFO):
        assert oc.OP_BY_NAME[info.name] == code


def test_names_are_unique():
    names = [info.name for info in oc.OP_INFO]
    assert len(names) == len(set(names))


def test_class_lookup():
    assert oc.op_class(oc.ADD) == oc.OC_SIMPLE
    assert oc.op_class(oc.MUL) == oc.OC_COMPLEX
    assert oc.op_class(oc.LD) == oc.OC_LOAD
    assert oc.op_class(oc.ST) == oc.OC_STORE
    assert oc.op_class(oc.BEQ) == oc.OC_BRANCH
    assert oc.op_class(oc.JAL) == oc.OC_JUMP


def test_latencies_positive():
    for info in oc.OP_INFO:
        assert info.latency >= 1


def test_simple_ops_single_cycle():
    for code, info in enumerate(oc.OP_INFO):
        if info.opclass == oc.OC_SIMPLE:
            assert info.latency == 1, info.name


def test_complex_ops_multicycle():
    for info in oc.OP_INFO:
        if info.opclass == oc.OC_COMPLEX:
            assert info.latency > 1, info.name


def test_control_predicates():
    assert oc.is_control(oc.BEQ)
    assert oc.is_control(oc.JMP)
    assert oc.is_control(oc.JR)
    assert not oc.is_control(oc.ADD)
    assert not oc.is_control(oc.LD)


def test_memory_predicates():
    assert oc.is_memory(oc.LD)
    assert oc.is_memory(oc.ST)
    assert not oc.is_memory(oc.BEQ)


def test_writes_reg_consistency():
    assert oc.OP_INFO[oc.ADD].writes_reg
    assert oc.OP_INFO[oc.LD].writes_reg
    assert oc.OP_INFO[oc.JAL].writes_reg
    assert not oc.OP_INFO[oc.ST].writes_reg
    assert not oc.OP_INFO[oc.BEQ].writes_reg
    assert not oc.OP_INFO[oc.JMP].writes_reg


def test_source_counts():
    assert oc.OP_INFO[oc.ADD].n_src == 2
    assert oc.OP_INFO[oc.ADDI].n_src == 1
    assert oc.OP_INFO[oc.LI].n_src == 0
    assert oc.OP_INFO[oc.CMOVZ].n_src == 3
    assert oc.OP_INFO[oc.ST].n_src == 2
    assert oc.OP_INFO[oc.JR].n_src == 1


def test_op_name_roundtrip():
    for code in range(oc.N_OPCODES):
        assert oc.OP_BY_NAME[oc.op_name(code)] == code
