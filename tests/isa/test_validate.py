"""Static program validation."""

import pytest

from repro.isa import Assembler
from repro.isa.validate import ERROR, WARNING, ValidationError, check, \
    validate
from repro.workloads import all_benchmarks


def test_clean_program_passes():
    a = Assembler("t")
    a.data_zeros(1)
    a.li("r1", 5)
    a.st("r1", "r0", 0)
    a.halt()
    assert check(a.build()) == []


def test_fallthrough_end_is_error():
    a = Assembler("t")
    a.li("r1", 1)  # no halt: falls off the end
    program = a.build()
    issues = validate(program)
    assert any(i.severity == ERROR and "fall off" in i.message
               for i in issues)
    with pytest.raises(ValidationError):
        check(program)


def test_trailing_conditional_branch_is_error():
    a = Assembler("t")
    a.label("top")
    a.li("r1", 0)
    a.bne("r1", "r0", "top")
    program = a.build()
    issues = validate(program)
    assert any("fall-through leaves" in i.message for i in issues)


def test_unwritten_register_warning():
    a = Assembler("t")
    a.data_zeros(1)
    a.st("r9", "r0", 0)   # r9 never written
    a.halt()
    issues = check(a.build())   # warnings don't raise
    assert any(i.severity == WARNING and "r9" in i.message
               for i in issues)


def test_wild_absolute_store_is_error():
    a = Assembler("t", memory_words=16)
    a.li("r1", 1)
    a.st("r1", "r0", 999)
    a.halt()
    with pytest.raises(ValidationError):
        check(a.build())


def test_missing_halt_warning():
    a = Assembler("t")
    a.label("spin")
    a.jmp("spin")
    issues = validate(a.build())
    assert any("no halt" in i.message for i in issues)


def test_empty_program_is_error():
    from repro.isa.program import Program
    issues = validate(Program("empty", []))
    assert issues[0].severity == ERROR


@pytest.mark.parametrize("name", [b.name for b in all_benchmarks()])
def test_every_benchmark_validates(name):
    """No kernel or synthetic program has error-severity issues."""
    from repro.workloads import benchmark
    program = benchmark(name).program("train")
    check(program)
