"""Functional interpreter: semantics, traces, and guards."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Assembler
from repro.isa import opcodes as oc
from repro.isa.interp import (
    ExecutionLimitExceeded, MemoryFault, execute, to_signed, to_unsigned,
)

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
S32 = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)


class TestArithmetic:
    """Semantics via dedicated store-and-verify programs."""

    def _value_via_branch(self, emit, expected):
        """Assert an ALU result equals `expected` using a beq check:
        the program halts at PC 'ok' if equal (trace ends without fault)."""
        a = Assembler("t")
        a.data_zeros(1, label="out")
        emit(a)
        a.li("r10", to_signed(to_unsigned(expected)))
        a.bne("r3", "r10", "bad")
        a.li("r11", 1)
        a.st("r11", "r0", 0)
        a.halt()
        a.label("bad")
        a.st("r0", "r0", 0)
        a.halt()
        trace = execute(a.build())
        store = [r for r in trace.records if r.is_store][-1]
        # The success path stores from r11 (value 1) — encoded in srcs.
        return store

    @given(a_val=U64, b_val=U64)
    @settings(max_examples=60, deadline=None)
    def test_add_matches_python(self, a_val, b_val):
        expected = (a_val + b_val) & ((1 << 64) - 1)

        def emit(a):
            a.li("r1", to_signed(a_val))
            a.li("r2", to_signed(b_val))
            a.add("r3", "r1", "r2")

        store = self._value_via_branch(emit, expected)
        assert store.srcs[1] == 11, "add result mismatch"

    @given(a_val=U64, b_val=U64)
    @settings(max_examples=60, deadline=None)
    def test_sub_xor_and_or(self, a_val, b_val):
        mask = (1 << 64) - 1
        cases = [
            ("sub", (a_val - b_val) & mask),
            ("xor", a_val ^ b_val),
            ("and_", a_val & b_val),
            ("or_", a_val | b_val),
        ]
        for name, expected in cases:
            def emit(a, name=name):
                a.li("r1", to_signed(a_val))
                a.li("r2", to_signed(b_val))
                getattr(a, name)("r3", "r1", "r2")

            store = self._value_via_branch(emit, expected)
            assert store.srcs[1] == 11, f"{name} mismatch"

    @given(a_val=U64, shift=st.integers(min_value=0, max_value=63))
    @settings(max_examples=40, deadline=None)
    def test_shifts(self, a_val, shift):
        mask = (1 << 64) - 1
        cases = [
            ("slli", (a_val << shift) & mask),
            ("srli", a_val >> shift),
            ("srai", to_unsigned(to_signed(a_val) >> shift)),
        ]
        for name, expected in cases:
            def emit(a, name=name):
                a.li("r1", to_signed(a_val))
                getattr(a, name)("r3", "r1", shift)

            store = self._value_via_branch(emit, expected)
            assert store.srcs[1] == 11, f"{name} mismatch"

    @given(a_val=S32, b_val=S32)
    @settings(max_examples=40, deadline=None)
    def test_comparisons(self, a_val, b_val):
        cases = [
            ("slt", int(a_val < b_val)),
            ("seq", int(a_val == b_val)),
            ("sltu", int(to_unsigned(a_val) < to_unsigned(b_val))),
        ]
        for name, expected in cases:
            def emit(a, name=name):
                a.li("r1", a_val)
                a.li("r2", b_val)
                getattr(a, name)("r3", "r1", "r2")

            store = self._value_via_branch(emit, expected)
            assert store.srcs[1] == 11, f"{name} mismatch"

    @given(a_val=S32, b_val=S32)
    @settings(max_examples=40, deadline=None)
    def test_mul_div_rem(self, a_val, b_val):
        mask = (1 << 64) - 1
        if b_val == 0:
            div_expected = rem_expected = 0
        else:
            quotient = int(a_val / b_val)  # C-style truncation
            div_expected = to_unsigned(quotient)
            rem_expected = to_unsigned(a_val - quotient * b_val)
        cases = [
            ("mul", (to_unsigned(a_val) * to_unsigned(b_val)) & mask),
            ("div", div_expected),
            ("rem", rem_expected),
        ]
        for name, expected in cases:
            def emit(a, name=name):
                a.li("r1", a_val)
                a.li("r2", b_val)
                getattr(a, name)("r3", "r1", "r2")

            store = self._value_via_branch(emit, expected)
            assert store.srcs[1] == 11, f"{name} mismatch"


class TestControlAndMemory:

    def test_r0_is_hardwired_zero(self):
        a = Assembler("t")
        a.data_zeros(2)
        a.li("r0", 99)
        a.st("r0", "r0", 1)
        a.halt()
        trace = execute(a.build())
        store = [r for r in trace.records if r.is_store][0]
        assert store.addr == 1

    def test_branch_outcomes_recorded(self):
        a = Assembler("t")
        a.li("r1", 2)
        a.label("top")
        a.addi("r1", "r1", -1)
        a.bne("r1", "r0", "top")
        a.halt()
        trace = execute(a.build())
        branches = [r for r in trace.records if r.opclass == oc.OC_BRANCH]
        assert [b.taken for b in branches] == [True, False]
        assert branches[0].next_pc == 1
        assert branches[1].next_pc == 3

    def test_call_and_return(self):
        a = Assembler("t")
        a.data_zeros(1)
        a.jal("callee")
        a.st("r2", "r0", 0)
        a.halt()
        a.label("callee")
        a.li("r2", 42)
        a.ret()
        trace = execute(a.build())
        pcs = [r.pc for r in trace.records]
        assert pcs == [0, 3, 4, 1, 2]

    def test_load_store_roundtrip(self):
        a = Assembler("t")
        a.data_zeros(4)
        a.li("r1", 1234)
        a.st("r1", "r0", 2)
        a.ld("r2", "r0", 2)
        a.li("r3", 1234)
        a.bne("r2", "r3", "fail")
        a.halt()
        a.label("fail")
        a.nop()
        a.halt()
        trace = execute(a.build())
        assert trace.records[-1].pc != 6  # did not reach the fail nop

    def test_memory_fault_on_wild_store(self):
        a = Assembler("t", memory_words=16)
        a.li("r1", 1 << 20)
        a.st("r1", "r1", 0)
        a.halt()
        with pytest.raises(MemoryFault):
            execute(a.build())

    def test_execution_limit(self):
        a = Assembler("t")
        a.label("spin")
        a.jmp("spin")
        with pytest.raises(ExecutionLimitExceeded):
            execute(a.build(), max_insts=100)

    def test_dynamic_counts(self):
        a = Assembler("t")
        a.li("r1", 3)
        a.label("top")
        a.addi("r1", "r1", -1)
        a.bne("r1", "r0", "top")
        a.halt()
        trace = execute(a.build())
        counts = trace.dynamic_count_of()
        assert counts == [1, 3, 3, 1]

    def test_cmov_semantics(self):
        a = Assembler("t")
        a.li("r2", 5)    # candidate
        a.li("r3", 0)    # condition (zero)
        a.li("r4", 9)    # old dest
        a.cmovz("r4", "r2", "r3")
        a.li("r5", 5)
        a.bne("r4", "r5", "fail")
        a.halt()
        a.label("fail")
        a.nop()
        a.halt()
        trace = execute(a.build())
        assert trace.records[-1].pc != 7


class TestMemoryCapture:

    def test_capture_memory_returns_final_image(self):
        a = Assembler("t")
        a.data_words([7, 8, 9])
        a.li("r1", 42)
        a.st("r1", "r0", 1)
        a.halt()
        trace = execute(a.build(), capture_memory=True)
        assert trace.final_memory[:3] == [7, 42, 9]
        assert len(trace.final_memory) == a.build().memory_words

    def test_capture_off_by_default(self):
        a = Assembler("t")
        a.halt()
        trace = execute(a.build())
        assert trace.final_memory is None
