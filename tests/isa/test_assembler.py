"""Assembler DSL: register parsing, labels, data layout, linking."""

import pytest

from repro.isa import Assembler, parse_reg
from repro.isa.instruction import REG_GP, REG_RA, REG_SP
from repro.isa import opcodes as oc


def test_parse_reg_forms():
    assert parse_reg(5) == 5
    assert parse_reg("r13") == 13
    assert parse_reg("zero") == 0
    assert parse_reg("ra") == REG_RA
    assert parse_reg("gp") == REG_GP
    assert parse_reg("sp") == REG_SP


def test_parse_reg_rejects_bad_names():
    with pytest.raises(ValueError):
        parse_reg("x7")
    with pytest.raises(ValueError):
        parse_reg("r32")
    with pytest.raises(ValueError):
        parse_reg(-1)


def test_data_layout_is_sequential():
    a = Assembler("t")
    first = a.data_words([1, 2, 3], label="first")
    second = a.data_zeros(4, label="second")
    third = a.data_words([9], label="third")
    assert (first, second, third) == (0, 3, 7)
    assert a.data_addr("second") == 3
    a.halt()
    program = a.build()
    assert program.data == [1, 2, 3, 0, 0, 0, 0, 9]


def test_label_resolution():
    a = Assembler("t")
    a.li("r1", 3)
    a.label("top")
    a.addi("r1", "r1", -1)
    a.bne("r1", "r0", "top")
    a.halt()
    program = a.build()
    branch = program.instructions[2]
    assert branch.imm == 1  # the PC of "top"


def test_duplicate_label_rejected():
    a = Assembler("t")
    a.label("x")
    a.nop()
    with pytest.raises(ValueError):
        a.label("x")


def test_undefined_label_rejected_at_build():
    a = Assembler("t")
    a.jmp("nowhere")
    with pytest.raises(ValueError, match="nowhere"):
        a.build()


def test_pseudo_ops():
    a = Assembler("t")
    a.mov("r2", "r3")
    a.li("r4", -7)
    a.beqz("r2", "end")
    a.bnez("r2", "end")
    a.label("end")
    a.ret()
    program = a.build()
    ops = [inst.op for inst in program.instructions]
    assert ops == [oc.ADDI, oc.LI, oc.BEQ, oc.BNE, oc.JR]
    assert program.instructions[0].imm == 0
    assert program.instructions[4].srcs == (REG_RA,)


def test_store_operand_order():
    """st(src, base, offset): base is srcs[0], value is srcs[1]."""
    a = Assembler("t")
    a.st("r5", "r6", 12)
    a.halt()
    inst = a.build().instructions[0]
    assert inst.srcs == (6, 5)
    assert inst.imm == 12


def test_cmov_reads_destination():
    a = Assembler("t")
    a.cmovz("r2", "r3", "r4")
    a.halt()
    inst = a.build().instructions[0]
    assert inst.srcs == (3, 4, 2)
    assert inst.rd == 2


def test_here_tracks_pc():
    a = Assembler("t")
    assert a.here() == 0
    a.nop()
    a.nop()
    assert a.here() == 2


def test_memory_words_bound():
    with pytest.raises(ValueError):
        a = Assembler("t", memory_words=2)
        a.data_words([1, 2, 3])
        a.halt()
        a.build()
