"""Test package."""
