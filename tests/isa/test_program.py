"""Program structure: basic blocks and control-flow boundaries."""

import pytest

from repro.isa import Assembler, Instruction
from repro.isa import opcodes as oc


def _diamond():
    a = Assembler("diamond")
    a.li("r1", 5)                 # 0: block A
    a.beq("r1", "r0", "else_")    # 1: block A end
    a.addi("r2", "r1", 1)         # 2: block B
    a.jmp("join")                 # 3: block B end
    a.label("else_")
    a.addi("r2", "r1", 2)         # 4: block C
    a.label("join")
    a.st("r2", "r0", 0)           # 5: block D
    a.halt()                      # 6
    return a.build()


def test_basic_block_partition():
    program = _diamond()
    blocks = program.basic_blocks()
    spans = [(b.start, b.end) for b in blocks]
    assert spans == [(0, 2), (2, 4), (4, 5), (5, 7)]


def test_block_of_lookup():
    program = _diamond()
    assert program.block_of(0).index == 0
    assert program.block_of(3).index == 1
    assert program.block_of(4).index == 2
    assert program.block_of(6).index == 3


def test_blocks_cover_program_exactly():
    program = _diamond()
    covered = []
    for block in program.basic_blocks():
        covered.extend(block.pcs())
    assert covered == list(range(len(program)))


def test_halt_splits_blocks():
    a = Assembler("t")
    a.nop()
    a.halt()
    a.label("after")
    a.nop()
    a.halt()
    program = a.build()
    spans = [(b.start, b.end) for b in program.basic_blocks()]
    assert spans == [(0, 2), (2, 4)]


def test_jump_target_is_leader():
    a = Assembler("t")
    a.jmp("target")
    a.nop()
    a.label("target")
    a.nop()
    a.halt()
    program = a.build()
    starts = {b.start for b in program.basic_blocks()}
    assert 2 in starts


def test_instruction_validation():
    with pytest.raises(ValueError):
        Instruction(oc.ADD, rd=1, srcs=(2,))      # wrong arity
    with pytest.raises(ValueError):
        Instruction(oc.ADD, rd=None, srcs=(1, 2))  # missing destination
    with pytest.raises(ValueError):
        Instruction(oc.ST, rd=3, srcs=(1, 2))      # store writes nothing
    with pytest.raises(ValueError):
        Instruction(oc.ADD, rd=1, srcs=(2, 40))    # bad register


def test_zero_destination_writes_nothing():
    inst = Instruction(oc.ADD, rd=0, srcs=(1, 2))
    assert not inst.writes_reg


def test_render_and_listing():
    program = _diamond()
    listing = program.listing()
    assert "else_:" in listing
    assert "join:" in listing
    assert "beq" in listing
    assert program.instructions[1].render().startswith("beq r1, r0")
