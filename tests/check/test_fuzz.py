"""Property-based fuzzer, shrinker, and the acceptance scenario:
an intentionally broken selector must be caught by lockstep and shrunk
to a tiny reproducer."""

import json

from repro.check.fuzz import (
    CheckFailure, FuzzSpec, check_program, default_selectors, replay,
    run_fuzz,
)
from repro.check.shrink import ddmin, delete_instructions
from repro.minigraph import StructAll
from repro.minigraph.candidates import Candidate
from repro.workloads.generator import PROFILES


# -- spec determinism ------------------------------------------------------

def test_spec_derive_is_deterministic():
    for seed in (0, 7, 123456789):
        a, b = FuzzSpec.derive(seed), FuzzSpec.derive(seed)
        assert a == b
        assert a.profile in PROFILES
        assert 1 <= a.n_loops <= 3
        assert 4 <= a.trips <= 32
        assert 2 <= a.ops <= 10
        assert all(size in (16, 32, 64, 128) for size in a.array_sizes)
    assert len({FuzzSpec.derive(s) for s in range(20)}) > 1


def test_spec_build_is_deterministic():
    spec = FuzzSpec.derive(3)
    assert spec.build().listing() == spec.build().listing()


def test_spec_dict_roundtrip():
    spec = FuzzSpec.derive(42)
    assert FuzzSpec.from_dict(spec.to_dict()) == spec


# -- clean campaigns -------------------------------------------------------

def test_check_program_clean():
    assert check_program(FuzzSpec.derive(0).build()) is None


def test_run_fuzz_clean_campaign():
    report = run_fuzz(budget=600.0, seed=0, max_programs=6)
    assert report.ok
    assert report.programs == 6
    assert report.checks == 6 * len(default_selectors())
    assert len(report.selectors) == len(default_selectors())
    assert "read-port" in report.selectors
    assert "no divergences" in report.render()


def test_replay_clean():
    assert replay(0) is None


# -- broken-selector injection (the acceptance scenario) -------------------

def _swap_candidate(site, **overrides):
    cand = site.candidate
    fields = dict(program=cand.program, start=cand.start, end=cand.end,
                  ext_inputs=cand.ext_inputs, output=cand.output,
                  edges=cand.edges, serialization=cand.serialization)
    fields.update(overrides)
    site.candidate = Candidate(
        fields["program"], fields["start"], fields["end"],
        fields["ext_inputs"], fields["output"], fields["edges"],
        fields["serialization"])


def _drop_output_hook(program, selector, plan):
    """A buggy selector that treats one live output as interior state."""
    for site in plan.sites:
        if site.candidate.output is not None and site.frequency > 0:
            _swap_candidate(site, output=None)
            break
    return plan


def _corrupt_edges_hook(program, selector, plan):
    """A statically illegal plan that still executes correctly."""
    for site in plan.sites:
        if site.candidate.edges:
            _swap_candidate(site, edges=())
            break
    return plan


def test_broken_selector_caught_and_shrunk(tmp_path):
    report = run_fuzz(budget=600.0, seed=0, max_programs=5,
                      selectors=[StructAll()],
                      plan_hook=_drop_output_hook,
                      lint_plans=False,   # force the *lockstep* engine to catch it
                      artifacts_dir=str(tmp_path),
                      shrink_max_evals=200)
    assert not report.ok
    result = report.failures[0]
    assert result.failure.kind == "lockstep"
    assert result.failure.selector == StructAll().name
    assert result.failure.divergence is not None
    # The acceptance bar: a reproducer of at most 20 instructions.
    assert result.shrunk_program is not None
    assert len(result.shrunk_program) <= 20
    assert result.shrunk_failure.signature == result.failure.signature
    # Artifacts: a JSON reproducer with an exact replay command, and a
    # human-readable listing.
    assert len(result.artifact_paths) == 2
    meta = json.loads((tmp_path / f"reproducer-{result.spec.seed}.json")
                      .read_text())
    assert meta["replay"] == f"repro fuzz --replay {result.spec.seed}"
    assert FuzzSpec.from_dict(meta["spec"]) == result.spec
    txt = (tmp_path / f"reproducer-{result.spec.seed}.txt").read_text()
    assert "shrunk program" in txt


def test_statically_illegal_plan_caught_by_lint():
    report = run_fuzz(budget=600.0, seed=0, max_programs=3,
                      selectors=[StructAll()],
                      plan_hook=_corrupt_edges_hook,
                      shrink=False)
    assert not report.ok
    failure = report.failures[0].failure
    assert failure.kind == "lint"   # lockstep passed; the linter flagged it
    assert "stale-edges" in failure.message
    assert failure.issues


def test_check_failure_signature_and_render():
    failure = CheckFailure("lockstep", "struct-all", "boom")
    assert failure.signature == ("lockstep", "struct-all")
    assert "[lockstep]" in failure.render()
    assert "struct-all" in failure.render()


# -- the shrinker in isolation ---------------------------------------------

def test_ddmin_finds_minimal_subset():
    required = {3, 11}
    evals = []

    def keep_ok(subset):
        evals.append(len(subset))
        return required <= set(subset)

    kept = ddmin(list(range(20)), keep_ok)
    assert set(kept) == required
    assert len(evals) <= 400


def test_delete_instructions_remaps_branch_targets(sum_loop):
    branch_pc, branch = next(
        (pc, inst) for pc, inst in enumerate(sum_loop.instructions)
        if inst.is_branch)
    target = branch.imm
    victim = next(pc for pc in range(target)
                  if pc != branch_pc
                  and not sum_loop.instructions[pc].is_control)
    keep = [pc for pc in range(len(sum_loop)) if pc != victim]
    reduced = delete_instructions(sum_loop, keep)
    assert reduced is not None
    assert len(reduced) == len(sum_loop) - 1
    new_branch = reduced.instructions[keep.index(branch_pc)]
    assert new_branch.imm == target - 1


def test_delete_instructions_remaps_deleted_target(sum_loop):
    branch_pc, branch = next(
        (pc, inst) for pc, inst in enumerate(sum_loop.instructions)
        if inst.is_branch)
    target = branch.imm
    keep = [pc for pc in range(len(sum_loop)) if pc != target]
    reduced = delete_instructions(sum_loop, keep)
    assert reduced is not None
    # The deleted target now resolves to the next surviving instruction,
    # which occupies the target's old (shifted) slot.
    new_branch = reduced.instructions[keep.index(branch_pc)]
    assert new_branch.imm == keep.index(target + 1)


def test_delete_instructions_empty_keep(sum_loop):
    assert delete_instructions(sum_loop, []) is None
