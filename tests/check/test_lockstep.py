"""Differential lockstep engine: clean runs and seeded corruptions."""

import pytest

from repro.check.lockstep import (
    LockstepError, assert_lockstep, lockstep_check,
)
from repro.isa.interp import MachineState, execute
from repro.minigraph import StructAll, empty_plan, make_plan
from repro.minigraph.candidates import Candidate
from repro.minigraph.selectors import (
    SlackDynamicSelector, StructBounded, StructNone,
)
from repro.workloads.suite import benchmark


def _plan_for(program, trace, selector=None):
    return make_plan(program, trace.dynamic_count_of(),
                     selector or StructAll())


# -- the two interpreters agree (MachineState is the reference side) ------

def test_machinestate_matches_execute(sum_loop, branchy_loop):
    for program in (sum_loop, branchy_loop):
        trace = execute(program, capture_memory=True)
        machine = MachineState(program)
        stepped = machine.run()
        assert len(stepped) == len(trace.records)
        for a, b in zip(stepped, trace.records):
            assert (a.pc, a.op, a.rd, a.addr, a.taken, a.next_pc) == \
                (b.pc, b.op, b.rd, b.addr, b.taken, b.next_pc)
        assert machine.memory == trace.final_memory
        assert machine.halted


def test_machinestate_matches_execute_on_benchmarks():
    for name in ("crc32", "adpcm", "dijkstra"):
        program = benchmark(name).program("train")
        trace = execute(program, capture_memory=True)
        machine = MachineState(program)
        assert len(machine.run()) == len(trace.records)
        assert machine.memory == trace.final_memory


# -- clean plans pass ------------------------------------------------------

def test_lockstep_ok_all_selectors(branchy_loop, branchy_trace):
    for selector in (StructAll(), StructNone(), StructBounded(),
                     SlackDynamicSelector()):
        plan = _plan_for(branchy_loop, branchy_trace, selector)
        report = lockstep_check(branchy_loop, plan, trace=branchy_trace,
                                selector=selector.name)
        assert report.ok, report.render()
        assert report.records > 0


def test_lockstep_counts_handles(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    assert plan.sites
    report = lockstep_check(sum_loop, plan, trace=sum_trace)
    assert report.ok
    assert report.handles > 0
    assert report.singletons > 0
    assert report.stores_checked > 0
    assert "OK" in report.render()


def test_lockstep_empty_plan(sum_loop, sum_trace):
    report = lockstep_check(sum_loop, empty_plan(), trace=sum_trace)
    assert report.ok
    assert report.handles == 0
    assert report.singletons == len(sum_trace.records)


def test_lockstep_without_precomputed_trace(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    assert lockstep_check(sum_loop, plan).ok


# -- seeded corruptions are detected ---------------------------------------

def _corrupt(site, **overrides):
    """Replace a site's candidate with a corrupted copy."""
    cand = site.candidate
    fields = dict(program=cand.program, start=cand.start, end=cand.end,
                  ext_inputs=cand.ext_inputs, output=cand.output,
                  edges=cand.edges, serialization=cand.serialization)
    fields.update(overrides)
    site.candidate = Candidate(
        fields["program"], fields["start"], fields["end"],
        fields["ext_inputs"], fields["output"], fields["edges"],
        fields["serialization"])


def _site_with_output(plan):
    return next(site for site in plan.sites
                if site.candidate.output is not None
                and site.frequency > 0)


def test_detects_dropped_live_output(sum_loop, sum_trace):
    """A selector treating a live output as interior must be caught."""
    plan = _plan_for(sum_loop, sum_trace)
    _corrupt(_site_with_output(plan), output=None)
    report = lockstep_check(sum_loop, plan, trace=sum_trace)
    assert not report.ok
    assert "hidden" in report.divergence.message \
        or report.divergence.field.startswith("r")


def test_detects_phantom_output(sum_loop, sum_trace):
    """A declared output no constituent writes is a divergence."""
    plan = _plan_for(sum_loop, sum_trace)
    site = _site_with_output(plan)
    written = {inst.rd for inst in site.candidate.instructions()
               if inst.writes_reg}
    phantom = next(r for r in range(1, 32) if r not in written)
    _corrupt(site, output=(phantom, 0))
    report = lockstep_check(sum_loop, plan, trace=sum_trace)
    assert not report.ok
    assert report.divergence.field == "rd"


def test_detects_undeclared_input(sum_loop, sum_trace):
    """Dropping a declared external input must be caught at the read."""
    plan = _plan_for(sum_loop, sum_trace)
    site = next(site for site in plan.sites
                if site.candidate.ext_inputs and site.frequency > 0)
    _corrupt(site, ext_inputs=site.candidate.ext_inputs[1:])
    report = lockstep_check(sum_loop, plan, trace=sum_trace)
    assert not report.ok
    assert "does not declare" in report.divergence.message


def test_divergence_report_has_context(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    _corrupt(_site_with_output(plan), output=None)
    report = lockstep_check(sum_loop, plan, trace=sum_trace)
    rendered = report.render()
    assert "DIVERGED" in rendered
    assert "folded records" in rendered
    assert "static code around the fault" in rendered


def test_assert_lockstep_raises(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    assert_lockstep(sum_loop, plan, trace=sum_trace)  # clean: no raise
    _corrupt(_site_with_output(plan), output=None)
    with pytest.raises(LockstepError):
        assert_lockstep(sum_loop, plan, trace=sum_trace)
