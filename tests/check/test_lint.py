"""Plan invariant linter: clean plans and seeded violations."""

import pytest

from repro.check.lint import (
    PlanInvariantError, check_plan, lint_plan,
)
from repro.minigraph import StructAll, make_plan
from repro.minigraph.candidates import Candidate
from repro.minigraph.selection import MiniGraphPlan
from repro.minigraph.selectors import (
    SlackDynamicSelector, StructBounded, StructNone,
)
from repro.minigraph.templates import MGSite, MGTemplate, canonical_key


def _plan_for(program, trace, selector=None):
    return make_plan(program, trace.dynamic_count_of(),
                     selector or StructAll())


def _corrupt(site, **overrides):
    cand = site.candidate
    fields = dict(program=cand.program, start=cand.start, end=cand.end,
                  ext_inputs=cand.ext_inputs, output=cand.output,
                  edges=cand.edges, serialization=cand.serialization)
    fields.update(overrides)
    site.candidate = Candidate(
        fields["program"], fields["start"], fields["end"],
        fields["ext_inputs"], fields["output"], fields["edges"],
        fields["serialization"])


def _rules(issues):
    return {issue.rule for issue in issues}


# -- clean plans -----------------------------------------------------------

def test_clean_plans_pass(sum_loop, sum_trace, branchy_loop, branchy_trace):
    for program, trace in ((sum_loop, sum_trace),
                           (branchy_loop, branchy_trace)):
        for selector in (StructAll(), StructNone(), StructBounded(),
                         SlackDynamicSelector()):
            plan = _plan_for(program, trace, selector)
            issues = lint_plan(program, plan)
            assert issues == [], [i.render() for i in issues]
            assert check_plan(program, plan) is plan


# -- seeded violations -----------------------------------------------------

def test_bounds_violation(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    site = plan.sites[0]
    _corrupt(site, end=len(sum_loop.instructions) + 5)
    assert "bounds" in _rules(lint_plan(sum_loop, plan))


def test_size_violation(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    site = plan.sites[0]
    _corrupt(site, end=site.candidate.start + 1)  # a 1-constituent group
    assert "size" in _rules(lint_plan(sum_loop, plan))


def test_basic_block_violation(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    n = len(sum_loop.instructions)
    site = next(s for s in plan.sites
                if sum_loop.block_of(s.start).end + 1 <= n)
    _corrupt(site, end=sum_loop.block_of(site.start).end + 1)
    assert "basic-block" in _rules(lint_plan(sum_loop, plan))


def test_stale_output(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    site = next(s for s in plan.sites if s.candidate.output is not None)
    _corrupt(site, output=None)
    assert "stale-output" in _rules(lint_plan(sum_loop, plan))


def test_stale_edges(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    site = next(s for s in plan.sites if s.candidate.edges)
    _corrupt(site, edges=())
    assert "stale-edges" in _rules(lint_plan(sum_loop, plan))


def test_stale_inputs(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    site = next(s for s in plan.sites if s.candidate.ext_inputs)
    _corrupt(site, ext_inputs=site.candidate.ext_inputs[1:])
    assert "stale-inputs" in _rules(lint_plan(sum_loop, plan))


def test_overlapping_sites(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    site = plan.sites[0]
    clone = MGSite(999, site.template, site.candidate, 1)
    bad = MiniGraphPlan(list(plan.sites) + [clone], plan.templates)
    assert "overlap" in _rules(lint_plan(sum_loop, bad))


def test_orphan_site(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    bad = MiniGraphPlan([plan.sites[0]], [])
    assert "orphan-site" in _rules(lint_plan(sum_loop, bad))


def test_duplicate_template(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    template = plan.sites[0].template
    bad = MiniGraphPlan([plan.sites[0]], [template, template])
    assert "duplicate-template" in _rules(lint_plan(sum_loop, bad))


def test_template_shape_mismatch(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    site = plan.sites[0]
    other = next(s.candidate for s in plan.sites
                 if canonical_key(s.candidate)
                 != canonical_key(site.candidate))
    site.template = MGTemplate(site.template.id,
                               canonical_key(other), other)
    assert "template-shape" in _rules(lint_plan(sum_loop, plan))


def test_missing_template(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    plan.sites[0].template = None
    assert "template" in _rules(lint_plan(sum_loop, plan))


def test_budget_violation(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    assert len(plan.templates) > 0
    issues = lint_plan(sum_loop, plan, budget=0)
    assert "budget" in _rules(issues)
    assert lint_plan(sum_loop, plan, budget=len(plan.templates)) == []


def test_check_plan_raises_with_all_issues(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    for site in plan.sites[:2]:
        _corrupt(site, output=None if site.candidate.output else (1, 0))
    with pytest.raises(PlanInvariantError) as exc:
        check_plan(sum_loop, plan)
    assert exc.value.issues
    assert sum_loop.name in str(exc.value)


def test_issue_render_mentions_site_and_rule(sum_loop, sum_trace):
    plan = _plan_for(sum_loop, sum_trace)
    site = next(s for s in plan.sites if s.candidate.output is not None)
    _corrupt(site, output=None)
    issue = next(i for i in lint_plan(sum_loop, plan)
                 if i.rule == "stale-output")
    assert f"site #{site.id}" in issue.render()
    assert "stale-output" in issue.render()
