"""Batched native dispatch (``repro_run_batch``): bit parity, threads.

One C call runs a whole matrix of (config, trace) points over an
in-kernel thread pool. These tests pin the hard contract from the
per-point path: every point of a batch is bit-identical to running the
same core serially — across thread counts — and one point's failure
(cycle-budget deadlock) degrades only that point, never its batchmates.
"""

import dataclasses

import pytest

from repro.minigraph.selectors import StructAll
from repro.minigraph.transform import fold_trace
from repro.pipeline import ckern, full_config, reduced_config
from repro.pipeline.core import OoOCore

needs_kernel = pytest.mark.skipif(
    not ckern.available(),
    reason="compiled kernel unavailable (no C compiler or REPRO_PURE_PY)")

#: 10 benches x 2 configs x 2 record streams = 40 golden-matrix points.
BENCHES = ["adpcm", "bitcount", "crc32", "dijkstra", "fft",
           "gzip", "patricia", "qsort", "sha", "stringsearch"]
CONFIGS = (reduced_config, full_config)


def _full_stats(core, stats):
    """Every externally visible counter of a finished run, flattened."""
    out = {}
    for f in dataclasses.fields(stats):
        value = getattr(stats, f.name)
        if f.name == "activity":
            for af in dataclasses.fields(value):
                out["activity." + af.name] = getattr(value, af.name)
        else:
            out[f.name] = value
    bu = core.branch_unit
    h = core.hierarchy
    out.update({
        "bu.cond": (bu.cond_predictions, bu.cond_mispredictions),
        "il1": (h.il1.accesses, h.il1.misses),
        "dl1": (h.dl1.accesses, h.dl1.misses),
        "l2": (h.l2.accesses, h.l2.misses),
        "ss.violations": core.storesets.violations,
    })
    return out


def _matrix_cores(runner):
    """One un-run core per golden-matrix point, in deterministic order."""
    cores = []
    for bench in BENCHES:
        trace = runner.trace(bench)
        plan = runner.plan(bench, StructAll())
        folded = fold_trace(trace, plan)
        for config_fn in CONFIGS:
            for records in (trace.packed(), folded):
                cores.append(OoOCore(config_fn(), records,
                                     warm_caches=True))
    return cores


def _run_batch(cores, threads, max_cycles=200_000_000):
    entries = [core.kernel_batch_entry(max_cycles) for core in cores]
    assert all(entry is not None for entry in entries)
    return ckern.run_batch(entries, threads)


@needs_kernel
def test_golden_matrix_batch_vs_serial_bit_identical(runner):
    """All 40 points through one native call == 40 serial runs."""
    batch_cores = _matrix_cores(runner)
    assert len(batch_cores) >= 40
    results = _run_batch(batch_cores, threads=4)
    assert results is not None and len(results) == len(batch_cores)

    serial_cores = _matrix_cores(runner)
    for i, (core, point) in enumerate(zip(batch_cores, results)):
        rc, out, events, n_words, overflowed = point
        stats = core.apply_kernel_result(rc, out, events, n_words,
                                         overflowed)
        assert stats is not None, f"point {i} fell back"
        serial = serial_cores[i]
        want = _full_stats(serial, serial.run())
        got = _full_stats(core, stats)
        diffs = {k: (got[k], want[k]) for k in want if got.get(k) != want[k]}
        assert not diffs, f"point {i} diverged: {diffs}"


@needs_kernel
@pytest.mark.parametrize("threads", [1, 2, 8])
def test_thread_count_invariance(runner, threads):
    """The same batch produces byte-identical outputs on 1/2/8 threads."""
    reference = None
    cores = _matrix_cores(runner)[:12]
    results = _run_batch(cores, threads=threads)
    digest = [(rc, list(out), n_words, overflowed,
               list(events[:n_words]) if events is not None else None)
              for rc, out, events, n_words, overflowed in results]
    # Compare against a fresh serial (threads=1) dispatch of new cores.
    reference_results = _run_batch(_matrix_cores(runner)[:12], threads=1)
    reference = [(rc, list(out), n_words, overflowed,
                  list(events[:n_words]) if events is not None else None)
                 for rc, out, events, n_words, overflowed
                 in reference_results]
    assert digest == reference


@needs_kernel
def test_per_point_fallback_isolation(runner):
    """A deadlocking point (tiny cycle budget) degrades alone."""
    cores = _matrix_cores(runner)[:6]
    entries = [core.kernel_batch_entry(3 if i == 2 else 200_000_000)
               for i, core in enumerate(cores)]
    results = ckern.run_batch(entries, threads=4)
    serial_cores = _matrix_cores(runner)[:6]
    for i, (core, point) in enumerate(zip(cores, results)):
        rc, out, events, n_words, overflowed = point
        stats = core.apply_kernel_result(rc, out, events, n_words,
                                         overflowed)
        if i == 2:
            assert rc == ckern.RC_BUDGET
            assert stats is None  # caller reruns per-point (which raises)
        else:
            assert rc == ckern.RC_OK and stats is not None
            serial = serial_cores[i]
            assert _full_stats(core, stats) == \
                _full_stats(serial, serial.run())


@needs_kernel
def test_batched_tap_points_bit_identical(runner):
    """Observed (event-tap) points batch too: decoded profiles match the
    per-point kernel path field for field, local and global slack."""
    from repro.analysis.global_slack import GlobalSlackCollector
    from repro.minigraph.slack import SlackCollector
    config = reduced_config()

    def make(bench, global_slack):
        cls = GlobalSlackCollector if global_slack else SlackCollector
        collector = cls(runner._bench(bench).program("train"),
                        config_name=config.name, input_name="train")
        core = OoOCore(config, runner.trace(bench).packed(),
                       collector=collector, warm_caches=True)
        assert core._ctrace is not None and core._want_tap
        return core, collector

    points = [("crc32", False), ("crc32", True),
              ("fft", False), ("fft", True)]
    batch = [make(*p) for p in points]
    results = _run_batch([core for core, _ in batch], threads=2)
    for (bench, global_slack), (core, collector), point \
            in zip(points, batch, results):
        rc, out, events, n_words, overflowed = point
        stats = core.apply_kernel_result(rc, out, events, n_words,
                                         overflowed)
        assert stats is not None
        serial_core, serial_collector = make(bench, global_slack)
        serial_stats = serial_core.run()
        assert _full_stats(core, stats) == \
            _full_stats(serial_core, serial_stats)
        profile = collector.global_profile() if global_slack \
            else collector.profile()
        want = serial_collector.global_profile() if global_slack \
            else serial_collector.profile()

        def entries(prof):
            return {pc: (e.count, e.rel_issue, e.src_ready, e.out_ready,
                         e.slack, e.min_slack)
                    for pc, e in prof.entries.items()}

        assert entries(profile) == entries(want)


@needs_kernel
def test_batch_counters_and_arena_reuse(runner):
    """Dispatch counters tick, and batch points sharing one trace share
    one marshalled arena (identity, not just equality)."""
    trace = runner.trace("crc32")
    cores = [OoOCore(cfg(), trace.packed(), warm_caches=True)
             for cfg in (reduced_config, full_config)]
    entries = [core.kernel_batch_entry(200_000_000) for core in cores]
    assert entries[0][1] is entries[1][1]  # one MarshalledTrace arena
    before = dict(ckern.counters)
    results = ckern.run_batch(entries, threads=2)
    assert results is not None
    assert ckern.counters["batch_dispatches"] == \
        before["batch_dispatches"] + 1
    assert ckern.counters["batch_points"] == before["batch_points"] + 2
    assert 1 <= ckern.counters["batch_threads_last"] <= 2


def test_run_batch_unavailable_returns_none(monkeypatch, runner):
    monkeypatch.setenv("REPRO_PURE_PY", "1")
    assert ckern.run_batch([], 4) is None
