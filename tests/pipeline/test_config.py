"""Table 1 machine configurations."""

import pytest

from repro.pipeline import (
    CacheConfig, config_by_name, cross_2way_config, cross_8way_config,
    cross_dmem4_config, full_config, reduced_config,
)


def test_full_matches_table1():
    cfg = full_config()
    assert cfg.width == 4
    assert cfg.issue_queue == 30
    assert cfg.phys_regs == 144
    assert cfg.rob == 128
    assert cfg.load_queue == 48
    assert cfg.store_queue == 32
    assert (cfg.ports_simple, cfg.ports_complex, cfg.ports_load,
            cfg.ports_store) == (4, 1, 2, 1)


def test_reduced_matches_table1():
    cfg = reduced_config()
    assert cfg.width == 3
    assert cfg.issue_queue == 20
    assert cfg.phys_regs == 120
    assert (cfg.ports_simple, cfg.ports_load) == (3, 1)


def test_rename_register_counts():
    """The paper quotes 80 and 56 rename registers (regs - 2×32 arch)."""
    assert full_config().phys_regs - 64 == 80
    assert reduced_config().phys_regs - 64 == 56


def test_memory_system_matches_table1():
    cfg = full_config()
    assert cfg.il1.size_bytes == 32 * 1024 and cfg.il1.assoc == 2
    assert cfg.il1.latency == 3
    assert cfg.dl1.latency == 3
    assert cfg.l2.size_bytes == 1024 * 1024 and cfg.l2.assoc == 4
    assert cfg.l2.latency == 12
    assert cfg.mem_latency == 200


def test_minigraph_support_matches_table1():
    cfg = full_config()
    assert cfg.mg_max_issue == 2
    assert cfg.mg_max_mem_issue == 1
    assert cfg.mgt_entries == 512
    assert cfg.mg_alu_pipelines == 2
    assert cfg.mg_alu_pipeline_depth == 4


def test_pipeline_is_13_stages():
    cfg = full_config()
    total = (cfg.stages_front + 1 + cfg.stages_regread + 1
             + cfg.stages_to_commit)
    assert total == 13


def test_branch_predictor_is_24kbit():
    cfg = full_config()
    bits = (2 ** cfg.bimodal_bits + 2 ** cfg.gshare_bits
            + 2 ** cfg.chooser_bits) * 2
    assert bits == 24 * 1024
    assert cfg.btb_entries == 2048 and cfg.btb_assoc == 4
    assert cfg.ras_entries == 32


def test_cross_configs_differ_where_expected():
    assert cross_2way_config().width == 2
    assert cross_8way_config().width == 8
    dmem4 = cross_dmem4_config()
    assert dmem4.dl1.size_bytes == 8 * 1024
    assert dmem4.l2.size_bytes == 256 * 1024
    assert dmem4.width == reduced_config().width
    assert dmem4.il1.size_bytes == reduced_config().il1.size_bytes


def test_config_by_name():
    assert config_by_name("full").name == "full"
    assert config_by_name("reduced").name == "reduced"
    with pytest.raises(ValueError):
        config_by_name("bogus")


def test_scaled_override():
    cfg = full_config().scaled(width=6, name="custom")
    assert cfg.width == 6
    assert cfg.issue_queue == 30  # untouched
    assert full_config().width == 4  # original frozen


def test_cache_geometry_validation():
    good = CacheConfig(32 * 1024, 2, 32, 3)
    assert good.n_sets == 512
    with pytest.raises(ValueError):
        CacheConfig(1000, 3, 32, 1).n_sets


def test_summary_keys():
    summary = full_config().summary()
    assert summary["width"] == 4
    assert summary["issue_queue"] == 30
