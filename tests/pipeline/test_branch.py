"""Branch prediction structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline import full_config
from repro.pipeline.branch import (
    BranchTargetBuffer, BranchUnit, DirectionPredictor, ReturnAddressStack,
)


def test_direction_predictor_learns_bias():
    predictor = DirectionPredictor(full_config())
    for _ in range(8):
        predictor.update(100, True)
    assert predictor.predict(100) is True
    for _ in range(8):
        predictor.update(100, False)
    assert predictor.predict(100) is False


def test_direction_predictor_learns_alternation():
    """gshare + history should crack a strict alternation; bimodal cannot."""
    predictor = DirectionPredictor(full_config())
    outcome = True
    correct = 0
    total = 400
    for i in range(total):
        if i >= total - 100:
            correct += predictor.predict(200) == outcome
        predictor.update(200, outcome)
        outcome = not outcome
    assert correct >= 95  # near-perfect once history is learned


def test_btb_hit_and_replacement():
    btb = BranchTargetBuffer(full_config())
    btb.update(10, 500)
    assert btb.lookup(10) == 500
    assert btb.lookup(11) == -1
    btb.update(10, 600)
    assert btb.lookup(10) == 600


def test_btb_lru_eviction():
    cfg = full_config()
    btb = BranchTargetBuffer(cfg)
    n_sets = cfg.btb_entries // cfg.btb_assoc
    pcs = [7 + i * n_sets for i in range(cfg.btb_assoc + 1)]  # one set
    for pc in pcs:
        btb.update(pc, pc * 10)
    assert btb.lookup(pcs[0]) == -1  # oldest evicted
    for pc in pcs[1:]:
        assert btb.lookup(pc) == pc * 10


def test_ras_push_pop():
    ras = ReturnAddressStack(full_config())
    ras.push(11)
    ras.push(22)
    assert ras.pop() == 22
    assert ras.pop() == 11
    assert ras.pop() == -1


def test_ras_overflow_discards_oldest():
    cfg = full_config()
    ras = ReturnAddressStack(cfg)
    for i in range(cfg.ras_entries + 5):
        ras.push(i)
    # Pops return the newest entries; the oldest 5 were discarded.
    for i in reversed(range(5, cfg.ras_entries + 5)):
        assert ras.pop() == i
    assert ras.pop() == -1


def test_branch_unit_counts_mispredictions():
    unit = BranchUnit(full_config())
    # A fresh predictor with a never-seen branch: train taken repeatedly.
    results = [unit.predict_and_train(50, True, False, False, True, 99)
               for _ in range(10)]
    assert unit.cond_predictions == 10
    assert unit.cond_mispredictions == results.count(False)
    assert results[-1] is True  # eventually learned (direction + BTB)


def test_branch_unit_return_path():
    unit = BranchUnit(full_config())
    unit.predict_and_train(5, False, True, False, True, 100)   # call
    assert unit.predict_and_train(120, False, False, True, True, 6)  # ret
    # Return to a wrong address misses.
    unit.predict_and_train(5, False, True, False, True, 100)
    assert not unit.predict_and_train(120, False, False, True, True, 999)


def test_not_taken_without_btb_is_correct():
    """A correctly predicted not-taken branch needs no BTB entry."""
    unit = BranchUnit(full_config())
    for _ in range(6):
        unit.predict_and_train(300, True, False, False, False, 400)
    assert unit.predict_and_train(300, True, False, False, False, 400)


@given(st.lists(st.booleans(), min_size=1, max_size=200))
@settings(max_examples=30, deadline=None)
def test_direction_predictor_total_counts(outcomes):
    """Counters stay saturating: predictions are always boolean."""
    predictor = DirectionPredictor(full_config())
    for taken in outcomes:
        assert predictor.predict(77) in (True, False)
        predictor.update(77, taken)


def test_deep_call_return_nesting():
    """RAS predicts correctly through nested call/return pairs."""
    unit = BranchUnit(full_config())
    call_sites = [10, 20, 30, 40]
    for depth, pc in enumerate(call_sites):
        unit.predict_and_train(pc, False, True, False, True, 100 + depth)
    for depth, pc in reversed(list(enumerate(call_sites))):
        assert unit.predict_and_train(500 + depth, False, False, True,
                                      True, pc + 1)


def test_direct_jump_learns_target():
    unit = BranchUnit(full_config())
    assert not unit.predict_and_train(60, False, False, False, True, 90)
    assert unit.predict_and_train(60, False, False, False, True, 90)
