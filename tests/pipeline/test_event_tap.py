"""Event-tap parity: C-kernel event-log decode vs the Python observers.

The compiled kernel's opt-in event tap (``repro_run_tap``) appends
fixed-width ``[(ix << 4) | tag, a, b]`` triples for issue, operand
consumption, branch redirects, handle issue, and consumer delays.
:class:`SlackCollector` and :class:`AttributionCollector` rebuild their
per-static-instruction profiles post-hoc from that log. These tests pin
the contract that the reconstruction is **bit-identical** to the in-loop
Python-observer path — same golden timing stats, same profile entries,
same attribution tallies — across the golden-matrix workloads on the
profiling configuration, and that buffer overflow degrades to the
reference loop (never to wrong numbers).
"""

import pytest

from repro.minigraph.selectors import SlackProfileSelector, StructAll
from repro.minigraph.slack import SlackCollector
from repro.minigraph.transform import fold_trace
from repro.obs.attribution import AttributionCollector
from repro.pipeline import ckern
from repro.pipeline.config import config_by_name
from repro.pipeline.core import OoOCore

needs_kernel = pytest.mark.skipif(
    not ckern.available(),
    reason="compiled kernel unavailable (no C compiler or REPRO_PURE_PY)")

#: Profiling runs happen on the reduced machine (§5.5 self-training).
PROFILE_CONFIG = "reduced"

WORKLOADS = ["crc32", "adpcm", "fft", "gzip"]


def _profile_entries(profile):
    """Every field of every entry, flattened for exact comparison."""
    return {
        pc: (e.count, e.rel_issue, e.src_ready, e.out_ready, e.slack,
             e.min_slack)
        for pc, e in profile.entries.items()
    }


def _attribution_table(collector):
    return {
        site_id: (c.instances, c.serialized, c.ext_delay_cycles,
                  c.consumer_delays)
        for site_id, c in collector.by_site.items()
    }


def _stats_key(stats):
    return (stats.cycles, stats.original_committed, stats.replays,
            stats.store_forwards, stats.ordering_violations,
            stats.handles_committed, stats.mg_serialized_instances)


def _run_profile(runner, bench, force_python):
    b = runner._bench(bench)
    config = config_by_name(PROFILE_CONFIG)
    trace = runner.trace(bench)
    collector = SlackCollector(b.program("train"), config_name=config.name,
                               input_name="train")
    core = OoOCore(config, trace.packed(), collector=collector,
                   warm_caches=True)
    if force_python:
        core._ctrace = None
        core._want_tap = False
    stats = core.run()
    return core, collector.profile(), stats


@needs_kernel
@pytest.mark.parametrize("bench", WORKLOADS)
def test_slack_profile_bit_identical(runner, bench):
    """The decoded profile equals the Python observer's, field for field."""
    core_c, prof_c, stats_c = _run_profile(runner, bench, force_python=False)
    assert core_c._ctrace is not None and core_c._want_tap
    core_p, prof_p, stats_p = _run_profile(runner, bench, force_python=True)
    assert _stats_key(stats_c) == _stats_key(stats_p)
    assert _profile_entries(prof_c) == _profile_entries(prof_p)
    assert len(prof_c) > 0


@needs_kernel
@pytest.mark.parametrize("bench,selector,config_name", [
    ("crc32", StructAll, "reduced"),
    ("adpcm", StructAll, "full"),
    ("fft", SlackProfileSelector, "reduced"),
    ("gzip", SlackProfileSelector, "full"),
])
def test_attribution_bit_identical(runner, bench, selector, config_name):
    """HANDLE/CDELAY decode equals the in-loop attribution tallies."""
    plan = runner.plan(bench, selector())
    records = fold_trace(runner.trace(bench), plan)
    config = config_by_name(config_name)
    results = []
    for force_python in (False, True):
        collector = AttributionCollector()
        core = OoOCore(config, records, attribution=collector,
                       warm_caches=True)
        if force_python:
            core._ctrace = None
            core._want_tap = False
        else:
            assert core._ctrace is not None and core._want_tap
        stats = core.run()
        results.append((_stats_key(stats), collector.handles_issued,
                        _attribution_table(collector)))
    assert results[0] == results[1]
    assert results[0][1] > 0  # handles actually issued


def _run_global_profile(runner, bench, force_python):
    from repro.analysis.global_slack import GlobalSlackCollector
    b = runner._bench(bench)
    config = config_by_name(PROFILE_CONFIG)
    trace = runner.trace(bench)
    collector = GlobalSlackCollector(b.program("train"),
                                     config_name=config.name,
                                     input_name="train")
    core = OoOCore(config, trace.packed(), collector=collector,
                   warm_caches=True)
    if force_python:
        core._ctrace = None
        core._want_tap = False
    stats = core.run()
    return core, collector.global_profile(), stats


@needs_kernel
@pytest.mark.parametrize("bench", WORKLOADS)
def test_global_slack_profile_bit_identical(runner, bench):
    """The TAP_VALUE + consumer-ix decode reproduces the in-loop global
    backward DP field for field (floats included: same op order)."""
    core_c, prof_c, stats_c = _run_global_profile(runner, bench,
                                                  force_python=False)
    assert core_c._ctrace is not None and core_c._want_tap
    assert core_c._tap_flags & ckern.TAP_FLAG_GLOBAL
    core_p, prof_p, stats_p = _run_global_profile(runner, bench,
                                                  force_python=True)
    assert _stats_key(stats_c) == _stats_key(stats_p)
    assert _profile_entries(prof_c) == _profile_entries(prof_p)
    assert len(prof_c) > 0


@needs_kernel
def test_both_observers_share_one_tap_run(runner):
    """Slack + attribution can decode the same event log from one run."""
    plan = runner.plan("crc32", StructAll())
    records = fold_trace(runner.trace("crc32"), plan)
    config = config_by_name("reduced")
    program = runner._bench("crc32").program("train")
    results = []
    for force_python in (False, True):
        slack = SlackCollector(program, config_name=config.name,
                               input_name="train")
        attr = AttributionCollector()
        core = OoOCore(config, records, collector=slack, attribution=attr,
                       warm_caches=True)
        if force_python:
            core._ctrace = None
            core._want_tap = False
        stats = core.run()
        results.append((_stats_key(stats), _profile_entries(slack.profile()),
                        attr.handles_issued, _attribution_table(attr)))
    assert results[0] == results[1]


@needs_kernel
def test_tap_overflow_falls_back_to_python(monkeypatch, runner):
    """An undersized buffer (even after the 4x retry) must degrade to the
    reference loop with identical results, never truncate the profile."""
    trace = runner.trace("crc32")
    config = config_by_name(PROFILE_CONFIG)
    program = runner._bench("crc32").program("train")
    monkeypatch.setattr(ckern, "tap_capacity", lambda packed: 3)

    collector = SlackCollector(program, config_name=config.name,
                               input_name="train")
    core = OoOCore(config, trace.packed(), collector=collector,
                   warm_caches=True)
    assert core._ctrace is not None  # still eligible at construction
    stats = core.run()               # overflow twice -> Python loop

    _, prof_p, stats_p = _run_profile(runner, "crc32", force_python=True)
    assert _stats_key(stats) == _stats_key(stats_p)
    assert _profile_entries(collector.profile()) == _profile_entries(prof_p)


@needs_kernel
def test_tap_capacity_is_generous(runner):
    """The first-shot capacity estimate covers the real event volume (the
    4x retry is a safety net, not the common path)."""
    packed = runner.trace("crc32").packed()
    config = config_by_name(PROFILE_CONFIG)
    cap = ckern.tap_capacity(packed)
    mtrace = ckern.marshal(packed)
    cfg = ckern.pack_config(config, True)
    rc, out, events, n_words, overflow = ckern.run_tap(
        cfg, mtrace, 10_000_000, cap)
    assert rc == ckern.RC_OK
    assert not overflow
    assert 0 < n_words <= cap
    assert n_words % ckern.TAP_WORDS == 0
