"""Cycle skipping: the event-driven core jumps over provably idle gaps.

When no uop can fetch, wake, issue, write back, or commit before some
future cycle, the core warps the clock to that cycle instead of stepping
through the gap. These tests pin the two halves of that contract: the
skip actually happens on latency-dominated code, and it is *invisible*
in every result — occupancy integrals, blocked-fetch accounting, and the
final statistics are identical to what the stepped loop would produce.
"""

import pytest

from repro.isa import Assembler
from repro.isa.interp import execute
from repro.pipeline import reduced_config
from repro.pipeline.core import OoOCore, SimulationDeadlock


def _pointer_chase(n=64, hops=256):
    """A serial chain of dependent loads: with cold caches every hop is
    a multi-cycle stall the core can only sit through — or skip."""
    a = Assembler("chase")
    # A permutation cycle with a large stride so consecutive hops land
    # in different cache sets.
    stride = 17  # gcd(17, 64) == 1: one cycle covering all n slots
    buf = a.data_words([(i + stride) % n for i in range(n)], label="buf")
    a.li("r1", buf)
    a.li("r2", 0)
    a.li("r3", hops)
    a.label("top")
    a.add("r4", "r1", "r2")
    a.ld("r2", "r4", 0)        # r2 = buf[r2]: serial through memory
    a.addi("r3", "r3", -1)
    a.bne("r3", "r0", "top")
    a.st("r2", "r0", buf)
    a.halt()
    return a.build()


def _python_run(records, warm_caches=True, max_cycles=200_000_000):
    """Force the Python reference loop (the skip logic under test)."""
    core = OoOCore(reduced_config(), records, warm_caches=warm_caches)
    core._ctrace = None
    stats = core.run(max_cycles=max_cycles)
    return core, stats


@pytest.fixture(scope="module")
def chase_trace():
    return execute(_pointer_chase())


def test_latency_bound_code_skips_cycles(chase_trace):
    _, stats = _python_run(chase_trace.packed(), warm_caches=False)
    assert stats.cycles_skipped > 0
    # The chase is stall-dominated: most of its cycles are skippable.
    assert stats.cycles_skipped > stats.cycles // 4


def test_skipped_cycles_are_fully_accounted(chase_trace):
    core, stats = _python_run(chase_trace.packed(), warm_caches=False)
    assert stats.cycles_skipped < stats.cycles
    # Occupancy integrals cover every simulated cycle, skipped or not.
    assert stats.activity.cycles == stats.cycles
    assert stats.fetch_cycles_blocked <= stats.cycles
    assert stats.original_committed == len(chase_trace.records)
    assert stats.ipc == pytest.approx(
        stats.original_committed / stats.cycles)


def test_high_ilp_code_barely_skips(sum_trace):
    """With work available nearly every cycle there is nothing to skip."""
    _, chase = _python_run(execute(_pointer_chase()).packed(),
                           warm_caches=False)
    _, busy = _python_run(sum_trace.packed())
    busy_rate = busy.cycles_skipped / busy.cycles
    chase_rate = chase.cycles_skipped / chase.cycles
    assert chase_rate > busy_rate


def test_skip_never_warps_past_cycle_budget(chase_trace):
    """A skip that would cross ``max_cycles`` must raise, exactly like
    the stepped loop idling into the budget."""
    core, _ = _python_run(chase_trace.packed(), warm_caches=False)
    full_cycles = core.stats.cycles
    budget = full_cycles // 2
    core = OoOCore(reduced_config(), chase_trace.packed(),
                   warm_caches=False)
    core._ctrace = None
    with pytest.raises(SimulationDeadlock) as err:
        core.run(max_cycles=budget)
    assert str(err.value) == "exceeded max cycle budget"
    assert core.stats.cycles == 0  # only set on a completed run
