"""Test package."""
