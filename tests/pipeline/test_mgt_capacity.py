"""Finite Mini-Graph Table: residency, fills, and the capacity cliff."""

from repro.isa import Assembler
from repro.isa.interp import execute
from repro.minigraph import StructAll, fold_trace, make_plan
from repro.pipeline import reduced_config
from repro.pipeline.core import OoOCore


def _many_template_program(n_templates=8, iters=40):
    """A loop over n distinct mini-graph shapes (distinct immediates force
    distinct templates)."""
    a = Assembler("many")
    a.data_zeros(n_templates + 1)
    a.li("r1", 1)
    a.li("r2", 2)
    a.li("r3", iters)
    a.label("top")
    for i in range(n_templates):
        a.addi("r4", "r1", i * 17 + 1)   # unique imm => unique template
        a.add("r5", "r4", "r2")
        a.st("r5", "r0", i)
    a.addi("r3", "r3", -1)
    a.bne("r3", "r0", "top")
    a.halt()
    return a.build()


def _mg_records(program):
    trace = execute(program)
    plan = make_plan(program, trace.dynamic_count_of(), StructAll())
    return trace, plan, fold_trace(trace, plan)


def test_big_mgt_never_misses():
    program = _many_template_program()
    trace, plan, records = _mg_records(program)
    stats = OoOCore(reduced_config(), records, warm_caches=True).run()
    assert stats.mgt_misses == 0
    assert stats.handles_committed > 0


def test_cold_mgt_misses_once_per_template():
    program = _many_template_program()
    trace, plan, records = _mg_records(program)
    stats = OoOCore(reduced_config(), records, warm_caches=False).run()
    assert stats.mgt_misses == plan.n_templates


def test_small_mgt_thrashes():
    program = _many_template_program(n_templates=8)
    trace, plan, records = _mg_records(program)
    if plan.n_templates < 6:
        return  # selection collapsed the shapes; nothing to thrash
    tiny = reduced_config().scaled(name="tiny-mgt", mgt_entries=2)
    stats = OoOCore(tiny, records, warm_caches=True).run()
    # Round-robin over >2 templates against a 2-entry LRU: every instance
    # misses.
    assert stats.mgt_misses > stats.handles_committed * 0.5


def test_mgt_misses_cost_cycles():
    program = _many_template_program(n_templates=8)
    trace, plan, records = _mg_records(program)
    if plan.n_templates < 6:
        return
    big = OoOCore(reduced_config(), records, warm_caches=True).run()
    tiny_cfg = reduced_config().scaled(name="tiny-mgt", mgt_entries=2)
    tiny = OoOCore(tiny_cfg, records, warm_caches=True).run()
    assert tiny.cycles > big.cycles
    assert tiny.original_committed == big.original_committed


def test_mgt_capacity_monotone():
    program = _many_template_program(n_templates=8)
    trace, plan, records = _mg_records(program)
    cycles = []
    for entries in (1, 2, 4, 16, 512):
        config = reduced_config().scaled(name=f"mgt{entries}",
                                         mgt_entries=entries)
        cycles.append(OoOCore(config, records, warm_caches=True)
                      .run().cycles)
    assert cycles[-1] <= cycles[0]
    assert cycles == sorted(cycles, reverse=True) or \
        max(cycles) - min(cycles) < max(cycles) * 0.5  # broadly monotone
