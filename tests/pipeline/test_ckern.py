"""Compiled timing kernel: equivalence with the Python loop, fallback.

The C kernel (:mod:`repro.pipeline.ckern`) is a statement-for-statement
port of ``OoOCore.run``; these tests pin the contract that the two paths
are *bit-identical* on every externally visible counter, and that the
kernel degrades to the Python loop (never to an error) when unavailable.
"""

import dataclasses

import pytest

from repro.minigraph import StructAll, fold_trace, make_plan
from repro.pipeline import ckern, full_config, reduced_config
from repro.pipeline.core import OoOCore, SimulationDeadlock

needs_kernel = pytest.mark.skipif(
    not ckern.available(),
    reason="compiled kernel unavailable (no C compiler or REPRO_PURE_PY)")


def _full_stats(core, stats):
    """Every externally visible counter of a finished run, flattened."""
    out = {}
    for f in dataclasses.fields(stats):
        value = getattr(stats, f.name)
        if f.name == "activity":
            for af in dataclasses.fields(value):
                out["activity." + af.name] = getattr(value, af.name)
        else:
            out[f.name] = value
    bu = core.branch_unit
    h = core.hierarchy
    out.update({
        "bu.cond": (bu.cond_predictions, bu.cond_mispredictions),
        "bu.indirect": (bu.indirect_predictions, bu.indirect_mispredictions),
        "il1": (h.il1.accesses, h.il1.misses),
        "dl1": (h.dl1.accesses, h.dl1.misses),
        "l2": (h.l2.accesses, h.l2.misses),
        "itlb": (h.itlb.accesses, h.itlb.misses),
        "dtlb": (h.dtlb.accesses, h.dtlb.misses),
        "ss.violations": core.storesets.violations,
    })
    return out


def _run_both(config, records, warm_caches=True):
    """(C stats, Python stats) for one point; skips if C is ineligible."""
    c_core = OoOCore(config, records, warm_caches=warm_caches)
    assert c_core._ctrace is not None, "C kernel should be eligible"
    c = _full_stats(c_core, c_core.run())
    py_core = OoOCore(config, records, warm_caches=warm_caches)
    py_core._ctrace = None
    py = _full_stats(py_core, py_core.run())
    return c, py


def _assert_identical(c, py):
    diffs = {k: (c[k], py[k]) for k in py if c.get(k) != py[k]}
    assert not diffs, f"C kernel diverged from Python loop: {diffs}"


@needs_kernel
@pytest.mark.parametrize("config_fn", [reduced_config, full_config])
def test_singleton_run_bit_identical(config_fn, sum_trace):
    c, py = _run_both(config_fn(), sum_trace.packed())
    _assert_identical(c, py)
    assert c["cycles"] > 0 and c["original_committed"] > 0


@needs_kernel
@pytest.mark.parametrize("warm", [True, False])
def test_branchy_run_bit_identical(warm, branchy_trace):
    c, py = _run_both(reduced_config(), branchy_trace.packed(),
                      warm_caches=warm)
    _assert_identical(c, py)
    assert c["cond_mispredicts"] > 0  # the point of the branchy loop


@needs_kernel
def test_minigraph_run_bit_identical(sum_loop, sum_trace):
    plan = make_plan(sum_loop, sum_trace.dynamic_count_of(), StructAll())
    records = fold_trace(sum_trace, plan)
    c, py = _run_both(full_config(), records)
    _assert_identical(c, py)
    assert c["handles_committed"] > 0


@needs_kernel
def test_prefetchers_bit_identical(sum_trace):
    config = dataclasses.replace(reduced_config(),
                                 il1_next_line_prefetch=True,
                                 dl1_stride_prefetch=True)
    c_core = OoOCore(config, sum_trace.packed(), warm_caches=False)
    assert c_core._ctrace is not None
    c = _full_stats(c_core, c_core.run())
    py_core = OoOCore(config, sum_trace.packed(), warm_caches=False)
    py_core._ctrace = None
    py = _full_stats(py_core, py_core.run())
    _assert_identical(c, py)
    assert c_core.hierarchy.dl1_prefetcher.issued == \
        py_core.hierarchy.dl1_prefetcher.issued


@needs_kernel
def test_budget_deadlock_parity(sum_trace):
    """Both paths raise the same message and leave ``cycles`` unset."""
    failures = []
    for force_python in (False, True):
        core = OoOCore(reduced_config(), sum_trace.packed())
        if force_python:
            core._ctrace = None
        with pytest.raises(SimulationDeadlock) as err:
            core.run(max_cycles=3)
        failures.append((str(err.value), core.stats.cycles,
                         core.stats.cache_stats))
    assert failures[0] == failures[1]
    assert failures[0][0] == "exceeded max cycle budget"
    assert failures[0][1] == 0  # cycles only set on a completed run


def test_pure_python_env_disables_kernel(monkeypatch, sum_trace):
    monkeypatch.setenv("REPRO_PURE_PY", "1")
    assert not ckern.available()
    core = OoOCore(reduced_config(), sum_trace.packed())
    assert core._ctrace is None
    assert core.run().original_committed > 0  # Python path still works


@needs_kernel
def test_tap_capable_observers_keep_the_kernel(sum_loop, sum_trace):
    """SlackCollector no longer forces the reference loop: it decodes the
    kernel's event tap post-hoc (parity in tests/pipeline/test_event_tap.py)."""
    from repro.minigraph.slack import SlackCollector
    collector = SlackCollector(sum_loop, config_name="reduced",
                               input_name="train")
    core = OoOCore(reduced_config(), sum_trace.packed(),
                   collector=collector)
    assert core._ctrace is not None and core._want_tap
    stats = core.run()
    assert stats.original_committed > 0
    assert len(collector.profile()) > 0


@needs_kernel
def test_global_slack_collector_keeps_the_kernel(sum_loop, sum_trace):
    """GlobalSlackCollector is tap-capable: it opts into TAP_VALUE
    records via ckern_tap_flags and decodes the log post-hoc (parity in
    tests/pipeline/test_event_tap.py)."""
    from repro.analysis.global_slack import GlobalSlackCollector
    from repro.pipeline import ckern
    collector = GlobalSlackCollector(sum_loop, config_name="reduced",
                                     input_name="train")
    core = OoOCore(reduced_config(), sum_trace.packed(),
                   collector=collector)
    assert core._ctrace is not None and core._want_tap
    assert core._tap_flags & ckern.TAP_FLAG_GLOBAL
    stats = core.run()
    assert stats.original_committed > 0
    assert len(collector.global_profile()) > 0


def test_tap_incapable_observers_stay_on_python_path(sum_loop, sum_trace):
    """Observers without ``supports_ckern_tap`` still force the reference
    loop."""
    class _PythonOnlyObserver:
        supports_ckern_tap = False

        def on_consume(self, producer, consumer, cycle):
            pass

        def on_redirect(self, uop, resolve_cycle):
            pass

        def on_commit(self, uop):
            pass

        def on_finish(self):
            pass

    core = OoOCore(reduced_config(), sum_trace.packed(),
                   collector=_PythonOnlyObserver())
    assert core._ctrace is None


@needs_kernel
def test_records_and_packed_inputs_agree(sum_trace):
    """Kernel eligibility must not depend on the input container type."""
    from_packed = OoOCore(reduced_config(), sum_trace.packed())
    from_records = OoOCore(reduced_config(), sum_trace.records)
    assert from_packed._ctrace is not None
    assert from_records._ctrace is not None
    assert _full_stats(from_packed, from_packed.run()) == \
        _full_stats(from_records, from_records.run())
