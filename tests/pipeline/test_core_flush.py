"""Flush-and-restart paths: rename-map rewind, repeated violations,
interaction with mini-graph handles."""

from repro.isa import Assembler
from repro.isa.interp import execute
from repro.minigraph import StructAll, fold_trace, make_plan
from repro.pipeline import full_config, reduced_config
from repro.pipeline.core import OoOCore


def _violating_program(iters=40, chain=12):
    """Stores whose operands arrive late, followed by same-address loads:
    aggressive scheduling violates until StoreSets learn."""
    a = Assembler("viol")
    a.data_zeros(64)
    a.li("r2", iters)
    a.li("r7", 1)
    a.label("top")
    a.mov("r3", "r7")
    for _ in range(chain):
        a.addi("r3", "r3", 1)
    a.st("r3", "r0", 9)
    a.ld("r5", "r0", 9)
    a.add("r7", "r7", "r5")
    a.andi("r7", "r7", 255)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "top")
    a.st("r7", "r0", 10)
    a.halt()
    return a.build()


def test_flush_preserves_commit_accounting():
    program = _violating_program()
    trace = execute(program)
    stats = OoOCore(full_config(), trace.records, warm_caches=True).run()
    assert stats.ordering_violations >= 1
    assert stats.original_committed == len(trace.records)


def test_flush_with_minigraphs():
    """A violation landing inside a mini-graph restarts at the handle."""
    program = _violating_program()
    trace = execute(program)
    plan = make_plan(program, trace.dynamic_count_of(), StructAll())
    records = fold_trace(trace, plan)
    stats = OoOCore(full_config(), records, warm_caches=True).run()
    assert stats.original_committed == len(trace.records)


def test_rename_map_correct_after_flush():
    """After a flush the rename map must rewind: the final checksum's
    dataflow spans the restart point, so a stale map would deadlock or
    change the commit count."""
    program = _violating_program(iters=60, chain=14)
    trace = execute(program)
    for config in (full_config(), reduced_config()):
        stats = OoOCore(config, trace.records, warm_caches=True).run()
        assert stats.original_committed == len(trace.records)


def test_storesets_learning_reduces_violations():
    """Violations should concentrate early: far fewer than iterations."""
    iters = 80
    program = _violating_program(iters=iters)
    trace = execute(program)
    stats = OoOCore(full_config(), trace.records, warm_caches=True).run()
    assert 1 <= stats.ordering_violations < iters // 2


def test_violation_with_forwarding_mix():
    """Loads that legitimately forward must not be flagged as violations
    once the producing store has resolved."""
    a = Assembler("fwdmix")
    a.data_zeros(16)
    a.li("r2", 50)
    a.li("r7", 3)
    a.label("top")
    a.st("r7", "r0", 4)        # resolves quickly (operands ready)
    a.ld("r5", "r0", 4)        # forwards from the store
    a.add("r7", "r5", "r7")
    a.andi("r7", "r7", 127)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "top")
    a.halt()
    program = a.build()
    trace = execute(program)
    stats = OoOCore(full_config(), trace.records, warm_caches=True).run()
    assert stats.store_forwards > 10
    assert stats.ordering_violations <= 2


def test_flush_during_fetch_block():
    """A violation while fetch is blocked on a mispredicted branch must
    clear the block and still finish."""
    a = Assembler("mix")
    a.data_zeros(64)
    a.li("r2", 60)
    a.li("r7", 1)
    a.li("r9", 0x5DEECE)
    a.label("top")
    a.mov("r3", "r7")
    for _ in range(10):
        a.addi("r3", "r3", 1)
    a.st("r3", "r0", 5)
    a.ld("r5", "r0", 5)
    a.add("r7", "r7", "r5")
    # Unpredictable branch right after the racy pair.
    a.slli("r10", "r9", 13)
    a.xor("r9", "r9", "r10")
    a.srli("r10", "r9", 7)
    a.xor("r9", "r9", "r10")
    a.andi("r11", "r9", 1)
    a.beq("r11", "r0", "skip")
    a.xori("r7", "r7", 21)
    a.label("skip")
    a.andi("r7", "r7", 255)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "top")
    a.halt()
    program = a.build()
    trace = execute(program)
    stats = OoOCore(full_config(), trace.records, warm_caches=True).run()
    assert stats.original_committed == len(trace.records)


def test_determinism():
    """Two runs of the same trace on fresh cores agree cycle-for-cycle."""
    program = _violating_program()
    trace = execute(program)
    first = OoOCore(full_config(), trace.records, warm_caches=True).run()
    second = OoOCore(full_config(), trace.records, warm_caches=True).run()
    assert first.cycles == second.cycles
    assert first.ordering_violations == second.ordering_violations
    assert first.replays == second.replays
