"""Structure-activity accounting: the amplification evidence."""

from repro.isa.interp import execute
from repro.minigraph import StructAll, fold_trace, make_plan
from repro.pipeline import reduced_config
from repro.pipeline.activity import amplification_report
from repro.pipeline.core import OoOCore

from tests.conftest import build_sum_loop


def _run(records):
    core = OoOCore(reduced_config(), records, warm_caches=True)
    stats = core.run()
    return stats


def test_singleton_activity_consistency(sum_trace):
    stats = _run(sum_trace.records)
    activity = stats.activity
    n = len(sum_trace.records)
    # Without flushes every instruction is fetched/renamed/committed once.
    assert activity.commit_slots == n
    assert activity.rename_ops >= n          # replays/flushes only add
    assert activity.fetch_slots >= n
    assert activity.iq_insertions == activity.rename_ops
    assert activity.cycles == stats.cycles
    per = activity.per_instruction(stats.original_committed)
    assert per["commit_slots"] == 1.0


def test_select_slots_cover_issues(sum_trace):
    stats = _run(sum_trace.records)
    activity = stats.activity
    # Every instruction issues at least once; replays add select slots.
    assert activity.select_slots >= len(sum_trace.records)


def test_occupancy_bounded_by_structures(sum_trace):
    stats = _run(sum_trace.records)
    activity = stats.activity
    config = reduced_config()
    assert activity.avg_iq_occupancy <= config.issue_queue
    assert activity.avg_window_occupancy <= config.rob


def test_minigraphs_reduce_bookkeeping_activity(sum_loop, sum_trace):
    """The central 'fewer resources' claim: per original instruction, the
    mini-graph run uses fewer fetch/rename/commit slots, fewer physical
    registers, and less IQ occupancy."""
    baseline = _run(sum_trace.records)
    plan = make_plan(sum_loop, sum_trace.dynamic_count_of(), StructAll())
    mg_stats = _run(fold_trace(sum_trace, plan))
    assert mg_stats.coverage > 0.3

    n = baseline.original_committed
    base = baseline.activity.per_instruction(n)
    mg = mg_stats.activity.per_instruction(n)
    for event in ("fetch_slots", "rename_ops", "iq_insertions",
                  "phys_allocations", "commit_slots", "regfile_writes"):
        assert mg[event] < base[event], event

    # The reduction tracks coverage: slots drop by about
    # coverage * (n-1)/n of the embedded groups.
    expected = 1 - mg_stats.coverage * 0.5   # groups of >=2: at least half
    assert mg["commit_slots"] <= expected + 0.05


def test_amplification_report_renders(sum_loop, sum_trace):
    baseline = _run(sum_trace.records)
    plan = make_plan(sum_loop, sum_trace.dynamic_count_of(), StructAll())
    mg_stats = _run(fold_trace(sum_trace, plan))
    text = amplification_report(baseline.activity, mg_stats.activity,
                                baseline.original_committed)
    assert "commit_slots" in text
    assert "reduction" in text


def test_render_per_instruction(sum_trace):
    stats = _run(sum_trace.records)
    text = stats.activity.render(stats.original_committed)
    assert "fetch_slots" in text
    assert "avg IQ occupancy" in text
