"""Prefetchers (what-if knobs beyond the Table 1 machines)."""

import pytest

from repro.isa import Assembler
from repro.isa.interp import execute
from repro.pipeline import full_config
from repro.pipeline.caches import MemoryHierarchy
from repro.pipeline.core import OoOCore
from repro.pipeline.prefetch import NextLinePrefetcher, StridePrefetcher


def test_stride_prefetcher_learns_stride():
    prefetcher = StridePrefetcher(confidence=2)
    assert prefetcher.observe(10, 100) is None   # first touch
    assert prefetcher.observe(10, 104) is None   # stride learned (conf 0)
    assert prefetcher.observe(10, 108) is None   # conf 1
    assert prefetcher.observe(10, 112) == 116    # confident
    assert prefetcher.observe(10, 116) == 120


def test_stride_prefetcher_resets_on_stride_change():
    prefetcher = StridePrefetcher(confidence=2)
    for addr in (0, 4, 8, 12):
        prefetcher.observe(10, addr)
    assert prefetcher.observe(10, 100) is None  # stride broke: re-learn
    assert prefetcher.observe(10, 104) is None


def test_stride_table_size_power_of_two():
    with pytest.raises(ValueError):
        StridePrefetcher(entries=100)


def test_next_line_prefetcher():
    prefetcher = NextLinePrefetcher()
    assert prefetcher.on_miss(7) == 8
    assert prefetcher.issued == 1


def test_hierarchy_stride_prefetch_hides_misses():
    config = full_config().scaled(name="pf", dl1_stride_prefetch=True)
    with_pf = MemoryHierarchy(config)
    without = MemoryHierarchy(full_config())
    # A long unit-stride stream of new lines.
    for i in range(0, 512):
        with_pf.load_latency(i * 4, pc=42)
        without.load_latency(i * 4, pc=42)
    assert with_pf.dl1.misses < without.dl1.misses * 0.6
    assert with_pf.dl1_prefetcher.issued > 100


def test_hierarchy_next_line_prefetch_hides_ifetch_misses():
    config = full_config().scaled(name="pf", il1_next_line_prefetch=True)
    with_pf = MemoryHierarchy(config)
    without = MemoryHierarchy(full_config())
    for pc in range(0, 4096, 4):
        with_pf.fetch_latency(pc)
        without.fetch_latency(pc)
    assert with_pf.il1.misses < without.il1.misses


def _stream_program(n=800):
    a = Assembler("stream")
    data = a.data_words(list(range(n * 4)), label="d")
    a.li("r1", data)
    a.li("r2", n)
    a.li("r3", 0)
    a.label("top")
    a.ld("r4", "r1", 0)
    a.add("r3", "r3", "r4")
    a.addi("r1", "r1", 4)   # one new line every access
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "top")
    a.halt()
    return a.build()


def test_prefetch_speeds_up_streaming_core():
    """End-to-end: a cold streaming loop runs faster with stride prefetch."""
    program = _stream_program()
    trace = execute(program)
    base_cfg = full_config()
    pf_cfg = full_config().scaled(name="pf", dl1_stride_prefetch=True)
    cold = OoOCore(base_cfg, trace.records, warm_caches=False).run()
    prefetched = OoOCore(pf_cfg, trace.records, warm_caches=False).run()
    assert prefetched.cycles < cold.cycles
    assert prefetched.cache_stats["dl1_misses"] < \
        cold.cache_stats["dl1_misses"]


def test_table1_machines_have_no_prefetchers():
    hierarchy = MemoryHierarchy(full_config())
    assert hierarchy.il1_prefetcher is None
    assert hierarchy.dl1_prefetcher is None
