"""Observers must not perturb timing.

Attaching a :class:`PipeTracer` disables the C kernel and runs the
Python reference loop with observation hooks live — but the *simulated*
results must still equal the untraced golden-matrix stats bit-exactly.
Tap-capable observers (:class:`AttributionCollector`,
:class:`SlackCollector`) stay on the compiled kernel and decode its
packed event log instead; for them the invariant is the same (golden
stats unchanged) on whichever path the core picks. Either way this
doubles as a C/Python parity check: the golden file was produced by
whatever path the untraced runner picks (the compiled kernel where
available), and the PipeTracer run can only use the Python loop.
"""

import json
from pathlib import Path

import pytest

from repro.harness.runner import Runner
from repro.minigraph.selectors import SlackProfileSelector, StructAll
from repro.minigraph.transform import fold_trace
from repro.obs.attribution import AttributionCollector
from repro.pipeline.config import config_by_name
from repro.pipeline.core import OoOCore
from repro.pipeline.pipetrace import PipeTracer

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "golden" / \
    "golden_stats.json"

_SELECTORS = {"struct-all": StructAll, "slack-profile": SlackProfileSelector}


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def runner():
    return Runner()


def _observed(stats):
    return {
        "cycles": stats.cycles,
        "ipc": stats.ipc,
        "coverage": stats.coverage,
        "original_committed": stats.original_committed,
        "replays": stats.replays,
        "store_forwards": stats.store_forwards,
        "ordering_violations": stats.ordering_violations,
        "mgt_misses": stats.mgt_misses,
        "fetch_cycles_blocked": stats.fetch_cycles_blocked,
        "icache_stall_cycles": stats.icache_stall_cycles,
        "avg_iq_occupancy": stats.activity.avg_iq_occupancy,
        "avg_window_occupancy": stats.activity.avg_window_occupancy,
    }


def _records(runner, bench, selector):
    if selector == "none":
        return runner.trace(bench).packed()
    plan = runner.plan(bench, _SELECTORS[selector]())
    return fold_trace(runner.trace(bench), plan)


def _check_against_golden(golden, key, stats):
    want = golden[key]
    observed = _observed(stats)
    if key.split("/")[1] == "none":
        observed["coverage"] = 0.0
    got = {name: observed[name] for name in want}
    assert got == want, f"{key}: observed run diverged from golden stats"


@pytest.mark.parametrize("bench,selector,config_name", [
    ("crc32", "none", "reduced"),
    ("crc32", "struct-all", "reduced"),
    ("mcf", "struct-all", "full"),
    ("fft", "slack-profile", "reduced"),
])
def test_pipetracer_does_not_perturb_timing(golden, runner, bench,
                                            selector, config_name):
    records = _records(runner, bench, selector)
    tracer = PipeTracer(max_rows=64)
    core = OoOCore(config_by_name(config_name), records, tracer=tracer,
                   warm_caches=True)
    assert core._ctrace is None  # tracer must force the Python loop
    stats = core.run()
    _check_against_golden(golden, f"{bench}/{selector}/{config_name}",
                          stats)
    assert tracer._rows  # the tracer actually observed the run


@pytest.mark.parametrize("bench,selector,config_name", [
    ("crc32", "struct-all", "reduced"),
    ("gzip", "slack-profile", "full"),
])
def test_attribution_does_not_perturb_timing(golden, runner, bench,
                                             selector, config_name):
    records = _records(runner, bench, selector)
    collector = AttributionCollector()
    core = OoOCore(config_by_name(config_name), records,
                   attribution=collector, warm_caches=True)
    # Attribution is tap-capable: it rides the compiled kernel when one
    # is available and decodes the event log post-hoc.
    from repro.pipeline import ckern
    assert (core._ctrace is not None) == ckern.available()
    stats = core.run()
    _check_against_golden(golden, f"{bench}/{selector}/{config_name}",
                          stats)
    # Every committed handle produced at least one issue event (squashed
    # handles may re-issue, so observed >= committed).
    assert collector.handles_issued >= stats.handles_committed > 0


def test_untraced_run_keeps_kernel_eligibility(runner):
    """The off path is untouched: no observer, same eligibility as before."""
    from repro.pipeline import ckern
    records = _records(runner, "crc32", "none")
    core = OoOCore(config_by_name("reduced"), records, warm_caches=True)
    assert (core._ctrace is not None) == ckern.available()
