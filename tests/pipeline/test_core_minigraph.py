"""Mini-graph execution in the timing core: amplification, serialization
detection, ALU-pipeline semantics, and dynamic disabling."""

from repro.isa import Assembler
from repro.isa.interp import execute
from repro.minigraph import (
    StructAll, StructNone, fold_trace, make_plan,
)
from repro.minigraph.dynamic import SlackDynamicPolicy
from repro.pipeline import full_config, reduced_config
from repro.pipeline.core import OoOCore


def _mg_run(program, config, selector=None, policy=None):
    trace = execute(program)
    plan = make_plan(program, trace.dynamic_count_of(),
                     selector or StructAll())
    records = fold_trace(trace, plan)
    core = OoOCore(config, records, policy=policy, warm_caches=True)
    stats = core.run()
    return trace, plan, stats


def _serializing_program(n=200):
    """A loop whose natural mini-graph has a late-arriving serializing
    input: the load value feeds the *second* constituent. The ``mul``
    separator keeps the load itself out of the aggregate."""
    a = Assembler("ser")
    data = a.data_words([3] * 64, label="d")
    a.data_zeros(1, label="out")
    a.li("r1", data)
    a.li("r2", n)
    a.li("r3", 5)
    a.li("r8", 0)
    a.label("top")
    a.andi("r9", "r2", 63)
    a.add("r10", "r1", "r9")
    a.ld("r4", "r10", 0)       # late value
    a.mul("r11", "r9", "r9")   # separator: complex ops never aggregate
    a.add("r5", "r3", "r3")    # mg first: early inputs
    a.add("r6", "r5", "r4")    # mg second: consumes the late load
    a.add("r8", "r8", "r6")
    a.add("r8", "r8", "r11")
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "top")
    a.st("r8", "r0", 64)
    a.halt()
    return a.build()


def test_committed_accounting_with_handles(sum_loop):
    trace, plan, stats = _mg_run(sum_loop, reduced_config())
    assert stats.original_committed == len(trace.records)
    assert stats.handles_committed > 0
    assert stats.embedded_committed > 0
    assert stats.coverage > 0.1


def test_coverage_matches_plan_expectation(sum_loop):
    trace, plan, stats = _mg_run(sum_loop, reduced_config())
    expected = plan.expected_dynamic_coverage(len(trace.records))
    assert abs(stats.coverage - expected) < 0.05


def test_minigraphs_recover_reduced_machine_performance():
    """On parallel code, amplification beats the reduced machine."""
    program = _wide_mg_program()
    trace = execute(program)
    reduced = reduced_config()
    baseline = OoOCore(reduced, trace.records, warm_caches=True).run()
    _, _, with_mg = _mg_run(program, reduced)
    assert with_mg.ipc > baseline.ipc


def test_struct_all_can_hurt_via_internal_serialization(sum_loop):
    """sum_loop's accumulator chain is a serialization trap: Struct-All
    embeds the whole ld/shift/add/add body and the loop-carried dependence
    pays the full serial aggregate latency — the paper's core hazard."""
    trace = execute(sum_loop)
    reduced = reduced_config()
    baseline = OoOCore(reduced, trace.records, warm_caches=True).run()
    _, _, with_mg = _mg_run(sum_loop, reduced)
    assert with_mg.ipc < baseline.ipc


def test_slack_profile_avoids_the_trap(sum_loop):
    """Slack-Profile must reject the harmful aggregate Struct-All takes."""
    from repro.minigraph import SlackProfileSelector
    from repro.minigraph.slack import SlackCollector
    trace = execute(sum_loop)
    reduced = reduced_config()
    baseline = OoOCore(reduced, trace.records, warm_caches=True).run()
    collector = SlackCollector(sum_loop, config_name="reduced")
    OoOCore(reduced, trace.records, collector=collector,
            warm_caches=True).run()
    plan = make_plan(sum_loop, trace.dynamic_count_of(),
                     SlackProfileSelector(), profile=collector.profile())
    records = fold_trace(trace, plan)
    stats = OoOCore(reduced, records, warm_caches=True).run()
    _, _, struct_all = _mg_run(sum_loop, reduced)
    assert stats.ipc >= struct_all.ipc
    assert stats.ipc >= baseline.ipc * 0.97


def test_slots_amplification(sum_loop):
    """Handles consume fewer commit slots than the instructions they embed."""
    trace, _, stats = _mg_run(sum_loop, reduced_config())
    assert stats.slots_committed < stats.original_committed


def test_serialization_detected():
    program = _serializing_program()
    trace, plan, stats = _mg_run(program, reduced_config())
    serializing_sites = [s for s in plan.sites
                         if s.candidate.is_potentially_serializing]
    assert serializing_sites, "test program must select a serializing MG"
    assert stats.mg_serialized_instances > 0
    assert stats.mg_consumer_delays > 0


def test_struct_none_admits_no_serialization():
    program = _serializing_program()
    trace, plan, stats = _mg_run(program, reduced_config(), StructNone())
    assert all(not s.candidate.is_potentially_serializing
               for s in plan.sites)
    assert stats.mg_serialized_instances == 0


def test_dynamic_policy_disables_serializing_site():
    program = _serializing_program(400)
    policy = SlackDynamicPolicy(threshold=4, resurrect_interval=10_000)
    trace, plan, stats = _mg_run(program, reduced_config(), policy=policy)
    assert policy.disable_events >= 1
    assert stats.mg_disabled_instances > 0
    assert stats.outline_jumps_committed == 2 * stats.mg_disabled_instances
    # Accounting still balances: constituents of disabled instances commit
    # as singletons.
    assert stats.original_committed == len(trace.records)


def test_ideal_policy_has_no_outline_jumps():
    program = _serializing_program(400)
    policy = SlackDynamicPolicy(threshold=4, outlining_penalty=False,
                                resurrect_interval=10_000)
    trace, plan, stats = _mg_run(program, reduced_config(), policy=policy)
    assert policy.disable_events >= 1
    assert stats.mg_disabled_instances > 0
    assert stats.outline_jumps_committed == 0
    assert stats.original_committed == len(trace.records)


def test_ideal_disabling_not_slower_than_outlined():
    program = _serializing_program(400)
    _, _, outlined = _mg_run(
        program, reduced_config(),
        policy=SlackDynamicPolicy(threshold=4, resurrect_interval=10_000))
    _, _, ideal = _mg_run(
        program, reduced_config(),
        policy=SlackDynamicPolicy(threshold=4, outlining_penalty=False,
                                  resurrect_interval=10_000))
    assert ideal.ipc >= outlined.ipc * 0.98


def test_mg_issue_width_limit():
    """At most mg_max_issue handles issue per cycle: heavy mini-graph code
    on a machine with mg_max_issue=1 is slower than with 2."""
    program = _wide_mg_program()
    trace = execute(program)
    plan = make_plan(program, trace.dynamic_count_of(), StructAll())
    records = fold_trace(trace, plan)
    one = full_config().scaled(name="mg1", mg_max_issue=1)
    two = full_config().scaled(name="mg2", mg_max_issue=2)
    stats_one = OoOCore(one, records, warm_caches=True).run()
    stats_two = OoOCore(two, records, warm_caches=True).run()
    assert stats_two.ipc >= stats_one.ipc


def _wide_mg_program(n=150):
    """Many independent two-instruction chains: lots of parallel handles."""
    a = Assembler("wide")
    a.data_zeros(8)
    for reg in range(1, 7):
        a.li(f"r{reg}", reg)
    a.li("r16", n)
    a.label("top")
    a.add("r8", "r1", "r2")
    a.add("r9", "r8", "r8")
    a.st("r9", "r0", 0)
    a.add("r10", "r3", "r4")
    a.add("r11", "r10", "r10")
    a.st("r11", "r0", 1)
    a.add("r12", "r5", "r6")
    a.add("r13", "r12", "r12")
    a.st("r13", "r0", 2)
    a.addi("r16", "r16", -1)
    a.bne("r16", "r0", "top")
    a.halt()
    return a.build()


def test_handle_with_branch_predicts_and_redirects(branchy_loop):
    trace, plan, stats = _mg_run(branchy_loop, reduced_config())
    assert stats.original_committed == len(trace.records)


def test_load_inside_handle_touches_cache(sum_loop):
    trace, plan, stats = _mg_run(sum_loop, reduced_config())
    loads_in_trace = sum(1 for r in trace.records if r.is_load)
    assert stats.loads_issued >= loads_in_trace
