"""StoreSets memory-dependence predictor."""

import pytest

from repro.pipeline import StoreSets


def test_untrained_predicts_independence():
    predictor = StoreSets(64)
    assert predictor.producer_store_for(100) is None
    assert predictor.rename_store(50, seq=1) is None


def test_violation_creates_dependence():
    predictor = StoreSets(64)
    predictor.train_violation(load_pc=100, store_pc=50)
    predictor.rename_store(50, seq=7)
    assert predictor.producer_store_for(100) == 7


def test_store_chain_within_set():
    predictor = StoreSets(64)
    predictor.train_violation(100, 50)
    predictor.train_violation(100, 51)  # both stores merged with the load
    assert predictor.rename_store(50, seq=1) is None
    assert predictor.rename_store(51, seq=2) == 1  # chained behind seq 1
    assert predictor.producer_store_for(100) == 2  # latest store of the set


def test_retire_clears_lfst():
    predictor = StoreSets(64)
    predictor.train_violation(100, 50)
    predictor.rename_store(50, seq=3)
    predictor.retire_store(50, seq=3)
    assert predictor.producer_store_for(100) is None


def test_retire_of_stale_seq_is_noop():
    predictor = StoreSets(64)
    predictor.train_violation(100, 50)
    predictor.rename_store(50, seq=3)
    predictor.rename_store(50, seq=4)
    predictor.retire_store(50, seq=3)  # superseded: must not clear
    assert predictor.producer_store_for(100) == 4


def test_flush_clears_inflight_state():
    predictor = StoreSets(64)
    predictor.train_violation(100, 50)
    predictor.rename_store(50, seq=9)
    predictor.flush()
    assert predictor.producer_store_for(100) is None
    # Training persists across flushes (it is a predictor table).
    predictor.rename_store(50, seq=10)
    assert predictor.producer_store_for(100) == 10


def test_merge_of_two_existing_sets():
    predictor = StoreSets(64)
    predictor.train_violation(100, 50)   # set A
    predictor.train_violation(101, 51)   # set B
    predictor.train_violation(100, 51)   # merge
    predictor.rename_store(51, seq=5)
    assert predictor.producer_store_for(100) == 5


def test_violation_counter():
    predictor = StoreSets(64)
    predictor.train_violation(1, 2)
    predictor.train_violation(3, 4)
    assert predictor.violations == 2


def test_table_size_must_be_power_of_two():
    with pytest.raises(ValueError):
        StoreSets(100)
