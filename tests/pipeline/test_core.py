"""Timing-core behaviour: throughput, dependences, prediction, memory."""

from repro.isa import Assembler
from repro.isa.interp import execute
from repro.pipeline import full_config, reduced_config
from repro.pipeline.core import OoOCore


def _run(program, config=None, **kwargs):
    trace = execute(program)
    core = OoOCore(config or full_config(), trace.records,
                   warm_caches=kwargs.pop("warm_caches", True), **kwargs)
    stats = core.run()
    return trace, stats


def _independent_adds(n=400):
    a = Assembler("indep")
    for reg in range(1, 9):
        a.li(f"r{reg}", reg)
    a.li("r10", n // 8)
    a.label("top")
    for reg in range(1, 9):
        a.addi(f"r{reg}", f"r{reg}", 1)
    a.addi("r10", "r10", -1)
    a.bne("r10", "r0", "top")
    a.halt()
    return a.build()


def _serial_adds(n=400):
    a = Assembler("serial")
    a.li("r1", 0)
    a.li("r10", n // 8)
    a.label("top")
    for _ in range(8):
        a.addi("r1", "r1", 1)
    a.addi("r10", "r10", -1)
    a.bne("r10", "r0", "top")
    a.halt()
    return a.build()


def test_all_instructions_commit():
    program = _independent_adds()
    trace, stats = _run(program)
    assert stats.original_committed == len(trace.records)


def test_ipc_never_exceeds_width():
    for config in (full_config(), reduced_config()):
        _, stats = _run(_independent_adds(), config)
        assert stats.ipc <= config.width + 1e-9


def test_independent_code_beats_serial_chain():
    _, indep = _run(_independent_adds())
    _, serial = _run(_serial_adds())
    assert indep.ipc > serial.ipc * 1.5


def test_serial_chain_is_one_per_cycle():
    """A pure dependence chain commits ~1 instruction per cycle."""
    _, stats = _run(_serial_adds(800))
    assert 0.7 <= stats.ipc <= 1.3


def test_wider_machine_is_not_slower():
    program = _independent_adds()
    _, full = _run(program, full_config())
    _, reduced = _run(program, reduced_config())
    assert full.ipc >= reduced.ipc * 0.98


def test_reduced_machine_hurts_parallel_code():
    _, full = _run(_independent_adds(), full_config())
    _, reduced = _run(_independent_adds(), reduced_config())
    assert reduced.ipc < full.ipc * 0.95


def test_predictable_branches_learned():
    program = _independent_adds()
    _, stats = _run(program)
    assert stats.cond_mispredict_rate < 0.1


def test_random_branches_mispredict():
    a = Assembler("rand")
    # Branch on a pseudo-random bit (xorshift) — unpredictable pattern.
    a.li("r1", 0x9E3779B9)
    a.li("r2", 300)
    a.li("r3", 0)
    a.label("top")
    a.slli("r4", "r1", 13)
    a.xor("r1", "r1", "r4")
    a.srli("r4", "r1", 7)
    a.xor("r1", "r1", "r4")
    a.slli("r4", "r1", 17)
    a.xor("r1", "r1", "r4")
    a.andi("r5", "r1", 1)
    a.beq("r5", "r0", "skip")
    a.addi("r3", "r3", 1)
    a.label("skip")
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "top")
    a.halt()
    _, stats = _run(a.build())
    assert stats.cond_mispredict_rate > 0.1


def test_mispredictions_cost_cycles():
    """Same instruction mix, biased vs random branch: random is slower."""
    def build(random_bit):
        a = Assembler("b")
        a.li("r1", 0x12345)
        a.li("r2", 400)
        a.li("r3", 0)
        a.label("top")
        a.slli("r4", "r1", 13)
        a.xor("r1", "r1", "r4")
        a.srli("r4", "r1", 7)
        a.xor("r1", "r1", "r4")
        if random_bit:
            a.andi("r5", "r1", 1)
        else:
            a.andi("r5", "r1", 0)   # always zero: perfectly predictable
        a.beq("r5", "r0", "skip")
        a.addi("r3", "r3", 1)
        a.label("skip")
        a.addi("r2", "r2", -1)
        a.bne("r2", "r0", "top")
        a.halt()
        return a.build()

    _, predictable = _run(build(False))
    _, random_b = _run(build(True))
    assert random_b.cycles > predictable.cycles


def test_pointer_chase_pays_load_latency():
    """Serial loads: at least dl1-latency cycles per chained load."""
    n = 128
    a = Assembler("chase")
    links = a.data_words([(i + 1) % n for i in range(n)], label="links")
    a.li("r1", 0)
    a.li("r2", 2 * n)
    a.li("r3", links)
    a.label("top")
    a.add("r4", "r3", "r1")
    a.ld("r1", "r4", 0)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "top")
    a.halt()
    trace, stats = _run(a.build())
    loads = sum(1 for r in trace.records if r.is_load)
    min_lat = full_config().dl1.latency
    assert stats.cycles >= loads * min_lat


def test_store_forwarding_happens():
    a = Assembler("fwd")
    a.data_zeros(8)
    a.li("r1", 7)
    a.li("r2", 100)
    a.label("top")
    a.st("r1", "r0", 3)
    a.ld("r4", "r0", 3)
    a.add("r1", "r1", "r4")
    a.andi("r1", "r1", 1023)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "top")
    a.halt()
    _, stats = _run(a.build())
    assert stats.store_forwards > 0


def test_ordering_violation_detected_and_trained():
    """A store whose address arrives late: younger same-address loads issue
    aggressively, violate, flush, and train StoreSets."""
    a = Assembler("viol")
    a.data_zeros(64)
    a.li("r9", 5)              # the aliased address
    a.li("r2", 60)
    a.li("r7", 1)
    a.label("top")
    # Long chain delaying the store's data AND address.
    a.mov("r3", "r7")
    for _ in range(10):
        a.addi("r3", "r3", 1)
    a.andi("r4", "r3", 63)
    a.st("r3", "r0", 5)        # store to fixed addr, data late
    a.ld("r5", "r0", 5)        # younger load, same address, ready early
    a.add("r7", "r7", "r5")
    a.andi("r7", "r7", 255)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "top")
    a.halt()
    _, stats = _run(a.build())
    assert stats.ordering_violations >= 1
    # StoreSets learn: violations far fewer than iterations.
    assert stats.ordering_violations < 30


def test_cache_miss_replays_counted():
    """Dependents scheduled on a hit assumption replay when the load
    misses (cold caches expose compulsory misses)."""
    n = 600
    a = Assembler("replay")
    data = a.data_words(list(range(n)), label="d")
    a.li("r1", data)
    a.li("r2", n // 4)
    a.li("r3", 0)
    a.label("top")
    a.ld("r4", "r1", 0)
    a.add("r3", "r3", "r4")     # dependent wakes speculatively
    a.addi("r1", "r1", 4)       # stride 4 words: new line every other iter
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "top")
    a.halt()
    trace = execute(a.build())
    core = OoOCore(full_config(), trace.records, warm_caches=False)
    stats = core.run()
    assert stats.replays > 0


def test_icache_behaviour_counted(sum_trace):
    core = OoOCore(full_config(), sum_trace.records, warm_caches=False)
    stats = core.run()
    assert stats.cache_stats["il1_misses"] >= 1


def test_warm_caches_remove_compulsory_misses(sum_trace):
    cold = OoOCore(full_config(), sum_trace.records,
                   warm_caches=False).run()
    warm = OoOCore(full_config(), sum_trace.records,
                   warm_caches=True).run()
    assert warm.cycles < cold.cycles
    assert warm.cache_stats["dl1_misses"] <= cold.cache_stats["dl1_misses"]


def test_stats_summary_renders(sum_trace):
    core = OoOCore(full_config(), sum_trace.records)
    stats = core.run()
    stats.program_name = "sumloop"
    text = stats.summary()
    assert "sumloop" in text and "ipc=" in text


def test_fetch_buffer_backpressure():
    """A stalled rename stage (tiny ROB) must throttle fetch without
    deadlock or lost instructions."""
    program = _independent_adds(240)
    trace = execute(program)
    tiny_rob = full_config().scaled(name="tiny-rob", rob=8)
    stats = OoOCore(tiny_rob, trace.records, warm_caches=True).run()
    assert stats.original_committed == len(trace.records)
    # Window never exceeds the ROB: occupancy average must respect it.
    assert stats.activity.avg_window_occupancy <= 8


def test_tiny_issue_queue_still_completes():
    program = _serial_adds(240)
    trace = execute(program)
    tiny_iq = full_config().scaled(name="tiny-iq", issue_queue=2)
    stats = OoOCore(tiny_iq, trace.records, warm_caches=True).run()
    assert stats.original_committed == len(trace.records)
    assert stats.activity.avg_iq_occupancy <= 2


def test_phys_register_pressure_slows_execution():
    """Fewer rename registers means a smaller effective window."""
    program = _independent_adds(400)
    trace = execute(program)
    roomy = full_config()
    starved = full_config().scaled(name="starved", phys_regs=64 + 10)
    fast = OoOCore(roomy, trace.records, warm_caches=True).run()
    slow = OoOCore(starved, trace.records, warm_caches=True).run()
    assert slow.cycles >= fast.cycles
    assert slow.original_committed == fast.original_committed


def test_complex_port_contention():
    """Multiply-heavy code is limited by the single complex port."""
    a = Assembler("muls")
    for reg in range(1, 7):
        a.li(f"r{reg}", reg + 1)
    a.li("r10", 60)
    a.label("top")
    a.mul("r7", "r1", "r2")
    a.mul("r8", "r3", "r4")
    a.mul("r9", "r5", "r6")
    a.addi("r10", "r10", -1)
    a.bne("r10", "r0", "top")
    a.halt()
    program = a.build()
    trace = execute(program)
    one_port = full_config()
    two_ports = full_config().scaled(name="cplx2", ports_complex=2)
    slow = OoOCore(one_port, trace.records, warm_caches=True).run()
    fast = OoOCore(two_ports, trace.records, warm_caches=True).run()
    assert fast.cycles < slow.cycles
