"""Pipetrace rendering and milestone consistency."""

from repro.isa import Assembler
from repro.isa.interp import execute
from repro.minigraph import StructAll, fold_trace, make_plan
from repro.pipeline import full_config
from repro.pipeline.core import OoOCore
from repro.pipeline.pipetrace import PipeTracer, pipetrace

from tests.conftest import build_sum_loop


def _traced(records, config=None):
    tracer = PipeTracer()
    stats = OoOCore(config or full_config(), records, warm_caches=True,
                    tracer=tracer).run()
    return tracer, stats


def test_all_committed_rows_have_milestones(sum_trace):
    tracer, stats = _traced(sum_trace.records)
    rows = tracer.rows()
    assert len(rows) == len(sum_trace.records)
    for row in rows:
        assert row.fetch >= 0
        assert row.rename > row.fetch          # front-end depth
        assert row.issue > row.rename          # schedule stage
        assert row.complete >= row.issue
        assert row.commit >= row.complete


def test_program_order_milestones_monotone(sum_trace):
    """Fetch, rename and commit are in-order streams."""
    tracer, _ = _traced(sum_trace.records)
    rows = tracer.rows()
    for a, b in zip(rows, rows[1:]):
        assert a.fetch <= b.fetch
        assert a.rename <= b.rename
        assert a.commit <= b.commit


def test_render_shape(sum_trace):
    tracer, _ = _traced(sum_trace.records)
    text = tracer.render(last=12)
    lines = text.splitlines()
    assert len(lines) == 13  # header + 12 rows
    assert "F" in lines[1] and "T" in lines[1]
    assert "ld" in text or "li" in text


def test_render_empty():
    tracer = PipeTracer()
    assert tracer.render() == "(no rows traced)"


def test_truncation():
    tracer = PipeTracer(max_rows=5)
    program = build_sum_loop()
    trace = execute(program)
    OoOCore(full_config(), trace.records, warm_caches=True,
            tracer=tracer).run()
    assert tracer.truncated
    assert "truncated" in tracer.render()


def test_minigraph_handles_one_row(sum_loop, sum_trace):
    plan = make_plan(sum_loop, sum_trace.dynamic_count_of(), StructAll())
    records = fold_trace(sum_trace, plan)
    tracer, stats = _traced(records)
    mg_rows = [r for r in tracer.rows() if r.mnemonic.startswith("mg#")]
    assert len(mg_rows) == stats.handles_committed
    assert "[" in mg_rows[0].mnemonic  # aggregate size shown


def test_squash_marked():
    a = Assembler("viol")
    a.data_zeros(16)
    a.li("r2", 30)
    a.li("r7", 1)
    a.label("top")
    a.mov("r3", "r7")
    for _ in range(12):
        a.addi("r3", "r3", 1)
    a.st("r3", "r0", 5)
    a.ld("r5", "r0", 5)
    a.add("r7", "r7", "r5")
    a.andi("r7", "r7", 255)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "top")
    a.halt()
    program = a.build()
    trace = execute(program)
    tracer, stats = _traced(trace.records)
    if stats.ordering_violations:
        assert any(r.squash >= 0 for r in tracer.rows())


def test_one_shot_helper(sum_trace):
    text = pipetrace(full_config(), sum_trace.records, last=8)
    assert "cycles" in text
