"""Cache hierarchy behaviour."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline import Cache, CacheConfig, MemoryHierarchy, full_config
from repro.pipeline.caches import (
    DATA_WORD_BYTES, INST_BYTES, TLB_MISS_PENALTY, Tlb,
)


def _tiny_cache(assoc=2, lines=8, line_bytes=32, latency=3):
    size = assoc * lines // assoc * assoc * line_bytes  # lines total
    return Cache(CacheConfig(lines * line_bytes, assoc, line_bytes, latency))


def test_miss_then_hit():
    cache = _tiny_cache()
    assert cache.access(0) is False
    assert cache.access(0) is True
    assert cache.access(16) is True  # same 32B line
    assert cache.access(32) is False  # next line


def test_lru_within_set():
    cache = Cache(CacheConfig(2 * 32, 2, 32, 1))  # 1 set, 2 ways
    cache.access(0)
    cache.access(32)
    cache.access(0)       # refresh line 0
    cache.access(64)      # evicts line 1 (LRU)
    assert cache.access(0) is True
    assert cache.access(32) is False


def test_probe_does_not_touch():
    cache = _tiny_cache()
    assert cache.probe(0) is False
    cache.access(0)
    assert cache.probe(0) is True
    assert cache.misses == 1


def test_invalidate():
    cache = _tiny_cache()
    cache.access(0)
    cache.invalidate(0)
    assert cache.access(0) is False


def test_miss_counting():
    cache = _tiny_cache()
    for addr in (0, 32, 64, 0, 32, 64):
        cache.access(addr)
    assert cache.accesses == 6
    assert cache.misses == 3


def test_tlb_miss_penalty():
    tlb = Tlb(entries=8, assoc=4)
    assert tlb.access(0) == TLB_MISS_PENALTY
    assert tlb.access(100) == 0          # same page
    assert tlb.access(4096) == TLB_MISS_PENALTY


def test_hierarchy_load_latencies():
    hierarchy = MemoryHierarchy(full_config())
    cfg = full_config()
    cold = hierarchy.load_latency(0)
    # Cold: L1 + TLB + L2 miss + memory.
    assert cold == cfg.dl1.latency + TLB_MISS_PENALTY + cfg.l2.latency \
        + cfg.mem_latency
    warm = hierarchy.load_latency(0)
    assert warm == cfg.dl1.latency


def test_hierarchy_l2_hit_path():
    cfg = full_config()
    hierarchy = MemoryHierarchy(cfg)
    hierarchy.load_latency(0)        # fill L1+L2
    # Evict from tiny window: walk enough lines to evict L1 set but not L2.
    words_per_line = cfg.dl1.line_bytes // DATA_WORD_BYTES
    n_sets = cfg.dl1.n_sets
    conflicting = [0, n_sets * words_per_line * 1,
                   n_sets * words_per_line * 2]
    for addr in conflicting:
        hierarchy.load_latency(addr)
    latency = hierarchy.load_latency(0)  # L1 evicted, L2 holds it
    assert latency == cfg.dl1.latency + cfg.l2.latency


def test_fetch_latency_uses_instruction_addressing():
    cfg = full_config()
    hierarchy = MemoryHierarchy(cfg)
    hierarchy.fetch_latency(0)
    insts_per_line = cfg.il1.line_bytes // INST_BYTES
    assert hierarchy.fetch_latency(insts_per_line - 1) == cfg.il1.latency
    assert hierarchy.ifetch_line(0) == hierarchy.ifetch_line(
        insts_per_line - 1)
    assert hierarchy.ifetch_line(insts_per_line) == 1


def test_store_touch_fills_line_for_later_loads():
    cfg = full_config()
    hierarchy = MemoryHierarchy(cfg)
    hierarchy.store_touch(40)
    assert hierarchy.load_latency(40) == cfg.dl1.latency


@given(st.lists(st.integers(min_value=0, max_value=4095), min_size=1,
                max_size=300))
@settings(max_examples=25, deadline=None)
def test_cache_capacity_bound(addresses):
    """Resident lines never exceed capacity; re-access of the most recent
    address is always a hit."""
    cache = Cache(CacheConfig(4 * 64, 2, 32, 1))
    for addr in addresses:
        cache.access(addr)
        assert cache.access(addr) is True
        resident = sum(len(s) for s in cache._sets)
        assert resident <= 8
