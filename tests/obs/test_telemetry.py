"""Telemetry writer, manifest, store/scheduler adapters, validator."""

import json

import pytest

from repro.obs.telemetry import (
    TELEMETRY_SCHEMA, TelemetryError, TelemetryWriter, attach_store_telemetry,
    config_digest, git_sha, run_manifest, scheduler_telemetry,
    validate_file, validate_telemetry,
)


def _read_lines(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


def test_manifest_contents():
    from repro.exec.store import code_version
    from repro.pipeline.config import config_by_name

    manifest = run_manifest(config=config_by_name("reduced"), seed=7,
                            label="unit", argv=["bench", "--quick"])
    assert manifest["kind"] == "manifest"
    assert manifest["schema"] == TELEMETRY_SCHEMA
    assert manifest["seed"] == 7
    assert manifest["label"] == "unit"
    assert manifest["argv"] == ["bench", "--quick"]
    assert manifest["salt"] == code_version()
    assert manifest["config_digest"] == config_digest(
        config_by_name("reduced"))
    # Running inside the repo: the SHA is a real 40-hex commit.
    sha = git_sha()
    assert sha == manifest["git_sha"]
    assert sha == "unknown" or (len(sha) == 40 and
                                set(sha) <= set("0123456789abcdef"))


def test_config_digest_is_stable_and_discriminating():
    from repro.pipeline.config import config_by_name

    reduced = config_by_name("reduced")
    assert config_digest(reduced) == config_digest(config_by_name("reduced"))
    assert config_digest(reduced) != config_digest(config_by_name("full"))
    assert config_digest({"b": 1, "a": 2}) == config_digest({"a": 2, "b": 1})
    assert len(config_digest(None)) == 16


def test_writer_emits_manifest_first_and_valid_events(tmp_path):
    path = tmp_path / "trace.jsonl"
    with TelemetryWriter(path) as writer:
        writer.instant("hello", "test", {"n": 1})
        with writer.span("work", "test", args={"stage": "trace"}):
            pass
        assert writer.events_written == 2
    lines = _read_lines(path)
    assert lines[0]["kind"] == "manifest"
    assert lines[1]["ph"] == "i" and lines[1]["args"] == {"n": 1}
    span = lines[2]
    assert span["ph"] == "X" and span["dur"] >= 0
    assert span["ts"] <= span["ts"] + span["dur"]
    summary = validate_file(path)
    assert summary["events"] == 2
    assert summary["spans"] == 1 and summary["instants"] == 1
    assert summary["cats"] == {"test": 2}


def test_span_closes_on_exception(tmp_path):
    path = tmp_path / "trace.jsonl"
    writer = TelemetryWriter(path)
    with pytest.raises(RuntimeError):
        with writer.span("boom", "test"):
            raise RuntimeError("inner failure")
    writer.close()
    summary = validate_file(path)
    assert summary["spans"] == 1  # the span was still written


def test_store_adapter_narrates_misses_and_hits(tmp_path):
    from repro.exec.store import ArtifactStore

    store = ArtifactStore()
    writer = TelemetryWriter(tmp_path / "t.jsonl")
    attach_store_telemetry(store, writer)
    store.get_or_compute("trace", {"benchmark": "crc32", "depth": 3},
                         lambda: "value")
    store.get_or_compute("trace", {"benchmark": "crc32", "depth": 3},
                         lambda: "value")
    writer.close()
    lines = _read_lines(writer.path)
    span = next(l for l in lines[1:] if l["ph"] == "X")
    assert span["cat"] == "runner" and span["name"] == "trace"
    assert span["args"]["benchmark"] == "crc32"
    hit = next(l for l in lines[1:] if l["ph"] == "i")
    assert hit["name"] == "cache-hit" and hit["cat"] == "store"
    validate_file(writer.path)


def test_scheduler_adapter_tees_to_inner(tmp_path):
    writer = TelemetryWriter(tmp_path / "t.jsonl")
    seen = []
    on_event = scheduler_telemetry(writer, seen.append)
    on_event({"kind": "done", "task": "run/crc32", "wall": 0.5,
              "worker": None})
    writer.close()
    assert seen == [{"kind": "done", "task": "run/crc32", "wall": 0.5,
                     "worker": None}]
    lines = _read_lines(writer.path)
    assert lines[1]["name"] == "done" and lines[1]["cat"] == "exec"
    assert lines[1]["args"] == {"task": "run/crc32", "wall": 0.5}


def _valid_lines():
    manifest = json.dumps(run_manifest(label="unit"))
    event = json.dumps({"name": "e", "cat": "c", "ph": "i", "ts": 5,
                        "pid": 1, "tid": 0})
    return [manifest, event]


def test_validate_accepts_well_formed_lines():
    summary = validate_telemetry(_valid_lines())
    assert summary["events"] == 1 and summary["instants"] == 1
    assert summary["manifest"]["label"] == "unit"


@pytest.mark.parametrize("corrupt,match", [
    (lambda ls: [], "no manifest"),
    (lambda ls: ["{not json"], "not valid JSON"),
    (lambda ls: ["[1, 2]"], "not a JSON object"),
    (lambda ls: [ls[1]], "first record must be the run manifest"),
    (lambda ls: [ls[0].replace('"schema": 1', '"schema": 99')
                 .replace('"schema":1', '"schema":99'), ls[1]],
     "unsupported schema"),
    (lambda ls: [ls[0], ls[1].replace('"ph": "i"', '"ph": "Q"')],
     "bad phase"),
    (lambda ls: [ls[0], ls[1].replace('"ts": 5', '"ts": -5')],
     "non-negative"),
    (lambda ls: [ls[0], json.dumps({"name": "s", "cat": "c", "ph": "X",
                                    "ts": 0})], "dur"),
    (lambda ls: [ls[0], json.dumps({"cat": "c", "ph": "i", "ts": 0})],
     "missing string 'name'"),
])
def test_validate_rejects_malformed_lines(corrupt, match):
    with pytest.raises(TelemetryError, match=match):
        validate_telemetry(corrupt(_valid_lines()))


def test_validate_missing_manifest_key():
    manifest = run_manifest()
    del manifest["git_sha"]
    with pytest.raises(TelemetryError, match="git_sha"):
        validate_telemetry([json.dumps(manifest)])


def test_validate_file_missing_path(tmp_path):
    with pytest.raises(TelemetryError, match="cannot read"):
        validate_file(tmp_path / "does-not-exist.jsonl")


def test_telemetry_error_is_value_error():
    """CLI convention: anticipated errors are ValueErrors (exit 2)."""
    assert issubclass(TelemetryError, ValueError)
