"""Attribution collector, predicted-vs-observed join, table rendering."""

import pytest

from repro.obs.attribution import (
    ATTRIBUTION_SELECTORS, AttributionCollector, PointAttribution,
    SiteAttribution, attribute_point, render_table, run_attribution,
)


class _FakeSite:
    def __init__(self, site_id):
        self.id = site_id


def test_collector_tallies_per_site():
    collector = AttributionCollector()
    a, b = _FakeSite(1), _FakeSite(2)
    collector.on_handle_issue(a, cycle=10, first_ready=4, last_arrival=9,
                              serialized=True, sial=True)
    collector.on_handle_issue(a, cycle=20, first_ready=20, last_arrival=18,
                              serialized=False, sial=False)
    collector.on_handle_issue(b, cycle=30, first_ready=30, last_arrival=30,
                              serialized=True, sial=True)
    collector.on_consumer_delay(a)
    assert collector.handles_issued == 3
    entry = collector.by_site[1]
    assert entry.instances == 2
    assert entry.serialized == 1
    assert entry.ext_delay_cycles == 5  # max(0, 9 - 4)
    assert entry.consumer_delays == 1
    # Zero-delta serialization contributes zero cycles, one instance.
    assert collector.by_site[2].ext_delay_cycles == 0
    assert collector.by_site[2].serialized == 1


def _site(site_id=1, sial=True, delay=2.0, frequency=10, instances=10,
          serialized=5, ext=15, cons=3, profiled=True):
    return SiteAttribution(
        site_id=site_id, template_id=site_id, size=3, frequency=frequency,
        predicted_delay=delay if profiled else None,
        predicted_degrades=sial if profiled else None,
        predicted_sial=sial if profiled else None,
        instances=instances, serialized=serialized, ext_delay_cycles=ext,
        consumer_delays=cons)


def test_point_aggregates():
    point = PointAttribution(selector="struct-all", bench="crc32",
                             config="reduced", cycles=100, handles_issued=30,
                             sites=[
                                 _site(1, sial=True, delay=4.0, frequency=30,
                                       instances=20, serialized=10, ext=40),
                                 _site(2, sial=False, delay=0.0, frequency=10,
                                       instances=10, serialized=0, ext=0,
                                       cons=0),
                                 _site(3, profiled=False, instances=0,
                                       serialized=0, ext=0, cons=0),
                             ])
    assert point.instances == 30
    assert point.serialized == 10
    assert point.observed_serialized_rate == pytest.approx(1 / 3)
    assert point.observed_delay_per_handle == pytest.approx(40 / 30)
    # Frequency-weighted over *profiled* sites only: 30 of 40.
    assert point.predicted_serialized_rate == pytest.approx(30 / 40)
    assert point.predicted_delay_per_handle == pytest.approx(
        (4.0 * 30 + 0.0 * 10) / 40)
    assert point.unprofiled_sites == 1


def test_empty_point_rates_are_zero():
    point = PointAttribution(selector="struct-none", bench="crc32",
                             config="reduced", cycles=50, handles_issued=0)
    assert point.observed_serialized_rate == 0.0
    assert point.predicted_serialized_rate == 0.0
    assert point.predicted_delay_per_handle == 0.0
    assert point.observed_delay_per_handle == 0.0


def test_run_attribution_validates_inputs():
    from repro.harness.runner import Runner
    runner = Runner()
    with pytest.raises(ValueError, match="at least one benchmark"):
        run_attribution(runner, [])
    with pytest.raises(ValueError, match="at least one selector"):
        run_attribution(runner, ["crc32"], selectors=[])
    with pytest.raises(ValueError, match="unknown selector"):
        run_attribution(runner, ["crc32"], selectors=["slack-psychic"])


@pytest.fixture(scope="module")
def crc32_points():
    """One small attribution matrix, shared across assertions."""
    from repro.harness.runner import Runner
    runner = Runner()
    return run_attribution(runner, ["crc32"],
                           selectors=["struct-all", "struct-none",
                                      "slack-profile"])


def test_attribution_matrix_matches_paper_story(crc32_points):
    by_selector = {p.selector: p for p in crc32_points}
    assert set(by_selector) == {"struct-all", "struct-none", "slack-profile"}

    struct_all = by_selector["struct-all"]
    assert struct_all.handles_issued > 0
    assert struct_all.serialized > 0  # admits serializing mini-graphs
    # The delay model predicted serialization where we observed it.
    assert struct_all.predicted_serialized_rate > 0.0
    assert struct_all.observed_serialized_rate > 0.0

    # Struct-none rejects every serializing candidate: handles issue,
    # but none of them are input-serialized and none were predicted to be.
    struct_none = by_selector["struct-none"]
    assert struct_none.handles_issued > 0
    assert struct_none.serialized == 0
    assert struct_none.observed_serialized_rate == 0.0
    assert struct_none.predicted_serialized_rate == 0.0

    # Slack-profile rejects predicted-degrading candidates, so its
    # observed serialization must be below struct-all's.
    slack = by_selector["slack-profile"]
    assert slack.observed_serialized_rate < \
        struct_all.observed_serialized_rate


def test_observed_join_covers_issued_handles(crc32_points):
    struct_all = next(p for p in crc32_points
                      if p.selector == "struct-all")
    # Every issue event landed on a known plan site.
    assert sum(s.instances for s in struct_all.sites) == \
        struct_all.handles_issued


def test_render_table_formats(crc32_points):
    text = render_table(crc32_points)
    lines = text.splitlines()
    assert lines[0].startswith("selector")
    for column in ("pred-ser%", "obs-ser%", "pred-dly", "obs-dly",
                   "cons-dly"):
        assert column in lines[0]
    assert any(line.startswith("struct-all") and " crc32 " in line
               for line in lines)
    assert sum(1 for line in lines if " TOTAL " in line) == 3

    detailed = render_table(crc32_points, per_template=True)
    assert "worst templates by observed serialization delay:" in detailed


def test_attribute_point_unknown_selector_raises():
    from repro.harness.runner import Runner
    from repro.pipeline.config import config_by_name
    with pytest.raises(ValueError, match="unknown selector"):
        attribute_point(Runner(), "crc32", "nope",
                        config_by_name("reduced"))


def test_selector_constant_names_all_five():
    assert ATTRIBUTION_SELECTORS == ("struct-all", "struct-none",
                                     "struct-bounded", "slack-profile",
                                     "slack-dynamic")
