"""Metrics registry: primitives, snapshot/delta, exporters, adapters."""

import json

import pytest

from repro.obs.metrics import (
    METRICS_SCHEMA, Histogram, MetricsError, MetricsRegistry, collect_core,
    collect_exec_report, collect_store, run_registry, validate_metrics,
)


def test_counter_and_gauge_basics():
    reg = MetricsRegistry()
    c = reg.counter("core.cycles", "cycles")
    c.inc(10)
    c.inc()
    assert c.value == 11
    g = reg.gauge("core.ipc")
    g.set(1.25)
    assert g.value == 1.25
    # Idempotent re-registration returns the same object.
    assert reg.counter("core.cycles") is c
    assert len(reg) == 2 and "core.ipc" in reg


def test_counter_rejects_negative_increment():
    c = MetricsRegistry().counter("x.y")
    with pytest.raises(MetricsError):
        c.inc(-1)


def test_kind_clash_rejected():
    reg = MetricsRegistry()
    reg.counter("a.b")
    with pytest.raises(MetricsError):
        reg.gauge("a.b")


@pytest.mark.parametrize("bad", ["", ".x", "x.", "Core.cycles", "a b",
                                 "x-y"])
def test_invalid_names_rejected(bad):
    with pytest.raises(MetricsError):
        MetricsRegistry().counter(bad)


def test_histogram_buckets_and_cumulative():
    h = Histogram("lat", buckets=(1, 2, 4))
    for v in (0.5, 1, 2, 3, 100):
        h.observe(v)
    assert h.count == 5
    assert h.counts == [2, 1, 1, 1]       # per-bin, +Inf last
    assert h.cumulative() == [2, 3, 4, 5]  # prometheus-style
    assert h.sum == pytest.approx(106.5)


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(MetricsError):
        Histogram("x", buckets=(4, 2))


def test_snapshot_delta():
    reg = MetricsRegistry()
    c = reg.counter("n.events")
    c.inc(5)
    h = reg.histogram("n.lat", buckets=(10,))
    h.observe(3)
    snap = reg.snapshot()
    c.inc(7)
    h.observe(4)
    reg.gauge("n.g").set(-2)  # registered after the snapshot
    delta = reg.delta(snap)
    assert delta["n.events"] == 7
    assert delta["n.lat"] == (4.0, 1)
    assert delta["n.g"] == -2


def test_json_export_validates_and_round_trips():
    reg = MetricsRegistry()
    reg.counter("a.n", "help text").inc(3)
    reg.gauge("a.g").set(0.5)
    reg.histogram("a.h", buckets=(1, 2)).observe(1.5)
    doc = reg.to_json()
    assert doc["schema"] == METRICS_SCHEMA
    assert validate_metrics(doc) == 3
    # Survives a JSON round trip.
    assert validate_metrics(json.loads(json.dumps(doc))) == 3


@pytest.mark.parametrize("mutate", [
    lambda d: d.pop("schema"),
    lambda d: d.__setitem__("metrics", "nope"),
    lambda d: d["metrics"][0].pop("value"),
    lambda d: d["metrics"][0].__setitem__("kind", "meter"),
    lambda d: d["metrics"].append(dict(d["metrics"][0])),  # duplicate
    lambda d: d["metrics"][0].__setitem__("value", -1),    # neg counter
])
def test_validate_rejects_malformed_documents(mutate):
    reg = MetricsRegistry()
    reg.counter("a.n").inc(1)
    doc = reg.to_json()
    mutate(doc)
    with pytest.raises(MetricsError):
        validate_metrics(doc)


def test_validate_histogram_count_consistency():
    reg = MetricsRegistry()
    reg.histogram("a.h", buckets=(1,)).observe(0.5)
    doc = reg.to_json()
    doc["metrics"][0]["count"] = 99
    with pytest.raises(MetricsError):
        validate_metrics(doc)


def test_prometheus_export_format():
    reg = MetricsRegistry()
    reg.counter("core.mg_serialized_instances", "serialized").inc(4)
    reg.gauge("core.ipc").set(1.5)
    reg.histogram("exec.wall", buckets=(1, 10)).observe(3)
    text = reg.to_prometheus()
    assert "# TYPE core_mg_serialized_instances counter" in text
    assert "core_mg_serialized_instances 4" in text
    assert "# HELP core_mg_serialized_instances serialized" in text
    assert "core_ipc 1.5" in text
    assert 'exec_wall_bucket{le="1"} 0' in text
    assert 'exec_wall_bucket{le="10"} 1' in text
    assert 'exec_wall_bucket{le="+Inf"} 1' in text
    assert "exec_wall_sum 3" in text
    assert "exec_wall_count 1" in text
    assert text.endswith("\n")


def test_collect_core_harvests_every_namespace():
    from repro.harness.runner import Runner
    from repro.pipeline.config import config_by_name
    from repro.pipeline.core import OoOCore
    from repro.pipeline.pipetrace import PipeTracer

    runner = Runner()
    core = OoOCore(config_by_name("reduced"),
                   runner.trace("crc32").packed(), warm_caches=True,
                   tracer=PipeTracer(max_rows=16))  # force the Python loop
    stats = core.run()
    reg = MetricsRegistry()
    collect_core(reg, core)
    doc = reg.to_json()
    validate_metrics(doc)
    names = {m["name"] for m in doc["metrics"]}
    assert "core.cycles" in names
    assert "activity.fetch_slots" in names
    assert "cache.il1.accesses" in names
    assert "tlb.dtlb.misses" in names
    assert "branch.cond_predictions" in names
    assert "storesets.violations" in names
    assert reg.get("core.cycles").value == stats.cycles
    assert reg.get("core.ipc").value == pytest.approx(stats.ipc)


def test_collect_store_and_exec_report():
    from repro.exec.dag import ExecReport
    from repro.exec.store import ArtifactStore

    store = ArtifactStore()
    store.get_or_compute("trace", {"x": 1}, lambda: "v")
    store.get_or_compute("trace", {"x": 1}, lambda: "v")
    report = ExecReport(results={"a": 1, "b": 2}, failures={"c": "boom"},
                        stage_wall={"trace": 0.2}, stage_tasks={"trace": 3},
                        elapsed=1.5, retries=2)
    reg = run_registry(store=store, exec_report=report)
    validate_metrics(reg.to_json())
    assert reg.get("store.misses").value == 1
    assert reg.get("store.memory_hits").value == 1
    assert reg.get("store.kind.trace.hits").value == 1
    assert reg.get("exec.tasks_done").value == 2
    assert reg.get("exec.tasks_failed").value == 1
    assert reg.get("exec.retries").value == 2
    assert reg.get("exec.stage.trace.tasks").value == 3


def test_collect_twice_accumulates():
    """Adapters add into existing metrics (snapshot/delta across runs)."""
    from repro.exec.dag import ExecReport
    reg = MetricsRegistry()
    collect_exec_report(reg, ExecReport(results={"a": 1}, retries=1))
    snap = reg.snapshot()
    collect_exec_report(reg, ExecReport(results={"b": 1}, retries=2))
    assert reg.get("exec.tasks_done").value == 2
    assert reg.delta(snap)["exec.retries"] == 2


def test_collect_store_smoke_via_helper():
    from repro.exec.store import ArtifactStore
    reg = MetricsRegistry()
    collect_store(reg, ArtifactStore())
    assert reg.get("store.hit_rate").value == 0.0
