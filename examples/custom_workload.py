#!/usr/bin/env python
"""Author a custom kernel and inspect its mini-graph anatomy.

Shows the analysis layers below selection: candidate enumeration,
structural serialization classes (§4.2), and the Slack-Profile delay
rules #1–#4 (§4.3) applied to each candidate, with the verdicts each
selector would reach.

Run:  python examples/custom_workload.py
"""

from repro.isa import Assembler
from repro.isa.interp import execute
from repro.minigraph import enumerate_candidates
from repro.minigraph.delay_model import assess
from repro.minigraph.slack import SlackCollector
from repro.pipeline import reduced_config
from repro.pipeline.core import OoOCore


def build_kernel():
    """A histogram loop with one deliberately serializing pattern."""
    a = Assembler("custom")
    n = 192
    data = a.data_words([(i * 31 + 7) % 64 for i in range(n)],
                        label="data")
    hist = a.data_zeros(64, label="hist")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", data)
    a.li("r2", n)
    a.li("r3", hist)
    a.li("r9", 0)
    a.label("loop")
    a.ld("r4", "r1", 0)        # bin index (late-arriving value)
    a.andi("r5", "r4", 63)
    a.add("r6", "r3", "r5")
    a.ld("r7", "r6", 0)        # hist[bin]
    a.addi("r7", "r7", 1)
    a.st("r7", "r6", 0)
    a.add("r9", "r9", "r4")    # running checksum
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", -1)
    a.bne("r2", "r0", "loop")
    a.st("r9", "r0", result)
    a.halt()
    return a.build()


def main():
    program = build_kernel()
    print(program.listing())
    trace = execute(program)

    collector = SlackCollector(program, config_name="reduced")
    OoOCore(reduced_config(), trace.records, collector=collector,
            warm_caches=True).run()
    profile = collector.profile()

    print(f"\n{len(trace)} dynamic instructions; "
          f"candidates of the hot block:\n")
    header = (f"{'span':>9s} {'shape':>10s} {'ext-in':>7s} {'out':>4s} "
              f"{'delay(out)':>10s} {'slack(out)':>10s} {'verdict':>8s}")
    print(header)
    print("-" * len(header))
    for candidate in enumerate_candidates(program):
        assessment = assess(candidate, profile)
        if assessment is None:
            continue
        delay = assessment.max_output_delay
        slack = "-"
        if assessment.output_indices:
            pcs = list(candidate.pcs)
            slack = min(profile.get(pcs[i]).slack
                        for i in assessment.output_indices)
            slack = f"{slack:10.2f}"
        verdict = "reject" if assessment.degrades else "accept"
        print(f"[{candidate.start:3d},{candidate.end:3d}) "
              f"{candidate.serialization.value:>10s} "
              f"{len(candidate.ext_inputs):7d} "
              f"{'r' + str(candidate.out_reg) if candidate.output else '-':>4s} "
              f"{delay:10.2f} {slack:>10s} {verdict:>8s}")

    print("\nlegend: shape 'none' = no serialization potential; "
          "'bounded'/'unbounded' per Struct-Bounded (§4.2);")
    print("verdict = Slack-Profile rule #4 on the self-trained profile.")


if __name__ == "__main__":
    main()
