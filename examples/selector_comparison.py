#!/usr/bin/env python
"""Compare all five mini-graph selectors on one benchmark (paper §5.1).

Runs a chosen suite benchmark on both Table 1 machines under every
selector and prints performance (relative to the fully-provisioned
baseline) and dynamic coverage — one program's slice of Figure 6.

Run:  python examples/selector_comparison.py [benchmark] [--input ref]
"""

import argparse

from repro.harness import Runner
from repro.minigraph import (
    SlackProfileSelector, StructAll, StructBounded, StructNone,
)
from repro.pipeline import full_config, reduced_config


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("benchmark", nargs="?", default="adpcm")
    parser.add_argument("--input", default="train")
    args = parser.parse_args()

    runner = Runner()
    full, reduced = full_config(), reduced_config()
    base_full = runner.baseline(args.benchmark, full, args.input).ipc
    base_reduced = runner.baseline(args.benchmark, reduced, args.input).ipc

    print(f"benchmark: {args.benchmark} ({args.input} input)")
    print(f"full baseline IPC: {base_full:.3f}   "
          f"reduced (no mini-graphs): {base_reduced / base_full:.3f}x\n")
    header = (f"{'selector':>16s} {'reduced rel':>12s} {'full rel':>10s} "
              f"{'coverage':>9s} {'sites':>6s} {'templates':>9s}")
    print(header)
    print("-" * len(header))

    selectors = [StructAll(), StructNone(), StructBounded(),
                 SlackProfileSelector()]
    for selector in selectors:
        on_reduced = runner.run_selector(args.benchmark, selector, reduced,
                                         input_name=args.input)
        on_full = runner.run_selector(args.benchmark, selector, full,
                                      input_name=args.input)
        print(f"{selector.name:>16s} {on_reduced.ipc / base_full:12.3f} "
              f"{on_full.ipc / base_full:10.3f} "
              f"{on_reduced.coverage:9.1%} "
              f"{len(on_reduced.plan.sites):6d} "
              f"{on_reduced.plan.n_templates:9d}")

    dynamic = runner.run_slack_dynamic(args.benchmark, reduced,
                                       input_name=args.input)
    dynamic_full = runner.run_slack_dynamic(args.benchmark, full,
                                            input_name=args.input)
    print(f"{'slack-dynamic':>16s} {dynamic.ipc / base_full:12.3f} "
          f"{dynamic_full.ipc / base_full:10.3f} "
          f"{dynamic.coverage:9.1%} "
          f"{len(dynamic.plan.sites):6d} {dynamic.plan.n_templates:9d}")
    print(f"\n(slack-dynamic disabled instances: "
          f"{dynamic.stats.mg_disabled_instances}, "
          f"outline jumps paid: {dynamic.stats.outline_jumps_committed})")


if __name__ == "__main__":
    main()
