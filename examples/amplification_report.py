#!/usr/bin/env python
"""Quantify the "fewer resources" claim and the code-motion extension.

Prints a per-structure activity report (fetch/rename/IQ/register-file/
commit events per program instruction) for a benchmark with and without
mini-graphs, then shows what dependence-preserving in-block code motion
(`repro.minigraph.schedule`) adds on top — the contiguity-lifting
extension described in DESIGN.md.

Run:  python examples/amplification_report.py [benchmark]
"""

import argparse

from repro.isa.interp import execute
from repro.minigraph import (
    SlackProfileSelector, fold_trace, make_plan, reschedule,
)
from repro.minigraph.slack import SlackCollector
from repro.pipeline import amplification_report, reduced_config
from repro.pipeline.core import OoOCore
from repro.workloads import benchmark as get_benchmark


def _mg_stats(program, reduced):
    trace = execute(program)
    collector = SlackCollector(program, config_name="reduced")
    OoOCore(reduced, trace.records, collector=collector,
            warm_caches=True).run()
    plan = make_plan(program, trace.dynamic_count_of(),
                     SlackProfileSelector(), profile=collector.profile())
    stats = OoOCore(reduced, fold_trace(trace, plan),
                    warm_caches=True).run()
    return trace, stats


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("benchmark", nargs="?", default="bitcount")
    args = parser.parse_args()

    reduced = reduced_config()
    program = get_benchmark(args.benchmark).program("train")
    trace = execute(program)
    baseline = OoOCore(reduced, trace.records, warm_caches=True).run()
    _, mg = _mg_stats(program, reduced)

    print(f"benchmark: {args.benchmark} on the reduced machine\n")
    print("structure activity per original instruction:")
    print(amplification_report(baseline.activity, mg.activity,
                               baseline.original_committed))
    print(f"\nIPC {baseline.ipc:.3f} -> {mg.ipc:.3f} "
          f"at {mg.coverage:.0%} coverage (slack-profile selection)")

    moved = reschedule(program, verify=True)
    _, mg_moved = _mg_stats(moved, reduced)
    print(f"\nwith in-block code motion: IPC {mg_moved.ipc:.3f} "
          f"at {mg_moved.coverage:.0%} coverage")


if __name__ == "__main__":
    main()
