#!/usr/bin/env python
"""Quickstart: mini-graphs recover the performance of a reduced machine.

Builds a small kernel with the assembler DSL, measures it on the
fully-provisioned and reduced machines (Table 1 of the paper), then lets
the Slack-Profile selector aggregate mini-graphs and shows the reduced
machine catching back up.

Run:  python examples/quickstart.py
"""

from repro.isa import Assembler
from repro.isa.interp import execute
from repro.minigraph import SlackProfileSelector, fold_trace, make_plan
from repro.minigraph.slack import SlackCollector
from repro.pipeline import full_config, reduced_config
from repro.pipeline.core import OoOCore


def build_kernel():
    """A saturating-add DSP-style loop with aggregable dataflow."""
    a = Assembler("quickstart")
    n = 256
    src = a.data_words([((i * 37) % 509) for i in range(n)], label="src")
    dst = a.data_zeros(n, label="dst")
    a.data_zeros(1, label="result")
    result = a.data_addr("result")

    a.li("r1", src)
    a.li("r2", dst)
    a.li("r3", n)
    a.li("r7", 255)            # saturation limit
    a.label("loop")
    a.ld("r4", "r1", 0)
    a.slli("r5", "r4", 1)      # gain of 2
    a.addi("r5", "r5", 16)     # bias
    a.blt("r5", "r7", "ok")    # saturate
    a.mov("r5", "r7")
    a.label("ok")
    a.st("r5", "r2", 0)
    a.addi("r1", "r1", 1)
    a.addi("r2", "r2", 1)
    a.addi("r3", "r3", -1)
    a.bne("r3", "r0", "loop")
    a.st("r5", "r0", result)
    a.halt()
    return a.build()


def main():
    program = build_kernel()
    trace = execute(program)
    full, reduced = full_config(), reduced_config()
    print(f"program: {program.name}  "
          f"({len(program)} static / {len(trace)} dynamic instructions)\n")

    # 1. Baselines: no mini-graphs.
    ipc_full = OoOCore(full, trace.records, warm_caches=True).run().ipc
    ipc_reduced = OoOCore(reduced, trace.records, warm_caches=True).run().ipc
    print(f"4-wide full machine   : {ipc_full:5.2f} IPC")
    print(f"3-wide reduced machine: {ipc_reduced:5.2f} IPC "
          f"({ipc_reduced / ipc_full - 1:+.1%})\n")

    # 2. Slack-profile the singleton execution on the reduced machine.
    collector = SlackCollector(program, config_name="reduced")
    OoOCore(reduced, trace.records, collector=collector,
            warm_caches=True).run()
    profile = collector.profile()

    # 3. Select mini-graphs and re-run the reduced machine.
    plan = make_plan(program, trace.dynamic_count_of(),
                     SlackProfileSelector(), profile=profile)
    stats = OoOCore(reduced, fold_trace(trace, plan),
                    warm_caches=True).run()
    print(f"selected {len(plan.sites)} mini-graph sites "
          f"({plan.n_templates} MGT templates)")
    print(f"reduced + mini-graphs : {stats.ipc:5.2f} IPC "
          f"({stats.ipc / ipc_full - 1:+.1%} vs full baseline, "
          f"coverage {stats.coverage:.0%})")


if __name__ == "__main__":
    main()
