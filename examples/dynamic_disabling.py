#!/usr/bin/env python
"""Watch Slack-Dynamic disable harmful mini-graphs at run time (§4.4).

Runs a serialization-prone benchmark under the aggressive Struct-All
selection with the Slack-Dynamic hardware monitor attached, then compares
three flavours: monitoring off, full Slack-Dynamic (with the outlining
penalty of disabled instances), and the idealized penalty-free variant.

Run:  python examples/dynamic_disabling.py [benchmark]
"""

import argparse

from repro.harness import Runner
from repro.minigraph import StructAll
from repro.pipeline import full_config, reduced_config


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("benchmark", nargs="?", default="crc32")
    args = parser.parse_args()

    runner = Runner()
    reduced = reduced_config()
    base_full = runner.baseline(args.benchmark, full_config()).ipc
    base_reduced = runner.baseline(args.benchmark, reduced).ipc

    struct_all = runner.run_selector(args.benchmark, StructAll(), reduced)
    dynamic = runner.run_slack_dynamic(args.benchmark, reduced)
    ideal = runner.run_slack_dynamic(args.benchmark, reduced,
                                     outlining_penalty=False)

    def row(label, ipc, stats=None):
        extra = ""
        if stats is not None:
            extra = (f"  serialized={stats.mg_serialized_instances}"
                     f"  propagated={stats.mg_consumer_delays}"
                     f"  disabled-instances={stats.mg_disabled_instances}"
                     f"  outline-jumps={stats.outline_jumps_committed}")
        print(f"{label:>28s}: {ipc / base_full:6.3f}x{extra}")

    print(f"benchmark: {args.benchmark} "
          f"(relative to the full 4-wide baseline)\n")
    row("reduced, no mini-graphs", base_reduced)
    row("struct-all (monitor off)", struct_all.ipc, struct_all.stats)
    row("slack-dynamic", dynamic.ipc, dynamic.stats)
    row("ideal-slack-dynamic", ideal.ipc, ideal.stats)
    print("\nSlack-Dynamic flags a mini-graph instance when its last "
          "arriving operand is serializing and the handle issued the "
          "moment that operand arrived; hysteresis counters disable a "
          "site when such delays repeatedly propagate to consumers.")


if __name__ == "__main__":
    main()
